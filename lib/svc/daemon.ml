module Sjson = Qxm_json.Sjson
module Circuit = Qxm_circuit.Circuit
module Qasm = Qxm_circuit.Qasm
module Coupling = Qxm_arch.Coupling
module Devices = Qxm_arch.Devices
module Strategy = Qxm_exact.Strategy
module Portfolio = Qxm_exact.Portfolio
module Certify = Qxm_exact.Certify
module Mapper = Qxm_exact.Mapper
module Pool = Qxm_par.Pool
module Cancel = Qxm_par.Cancel
module Metrics = Qxm_obs.Metrics
module Trace = Qxm_obs.Trace

let requests_total = lazy (Metrics.counter "svc.requests")
let done_total = lazy (Metrics.counter "svc.done")
let failed_total = lazy (Metrics.counter "svc.failed")
let rejected_total = lazy (Metrics.counter "svc.rejected")
let retries_total = lazy (Metrics.counter "svc.retries")
let deadline_expiries = lazy (Metrics.counter "svc.deadline_expiries")
let watchdog_cancels = lazy (Metrics.counter "svc.watchdog_cancels")
let verify_rejects = lazy (Metrics.counter "svc.cache_verify_rejects")
let hits_served = lazy (Metrics.counter "svc.cache_hits_served")
let certs_emitted = lazy (Metrics.counter "svc.certificates_emitted")
let cert_failures = lazy (Metrics.counter "svc.certificate_failures")

type config = {
  jobs : int;
  watermark : int;
  retry_after : float;
  default_budget : float option;
  retry : Backoff.policy;
  sleep : float -> unit;
  cache_dir : string option;
  cache_mem : int;
  use_cache : bool;
  certificates : bool;
  watchdog_period : float;
  watchdog_grace : float;
  portfolio : Portfolio.options;
}

let default_config =
  {
    jobs = 2;
    watermark = 32;
    retry_after = 0.1;
    default_budget = None;
    retry = Backoff.default;
    sleep = Unix.sleepf;
    cache_dir = None;
    cache_mem = 128;
    use_cache = true;
    certificates = false;
    watchdog_period = 0.05;
    watchdog_grace = 0.5;
    portfolio = Portfolio.default;
  }

type request = {
  req_id : string;
  circuit : Circuit.t;
  device : Coupling.t;
  device_name : string;
  strategy : Strategy.t;
  budget : float option;
  use_cache : bool;
}

type payload = {
  qasm : string;
  f_cost : int;
  total_gates : int;
  provenance : string;
  optimal : bool;
  verified : bool option;
  notes : string list;
  runtime : float;
  cached : bool;
  attempts : int;
}

type response =
  | Done of payload
  | Shed of { depth : int; retry_after : float }
  | Rejected of string
  | Failed of string

(* In-flight registry the watchdog scans: request id -> absolute
   deadline (None = unbounded) and the supervisor token to fire. *)
type inflight = { deadline : float option; token : Cancel.t }

type t = {
  config : config;
  pool : Pool.t;
  admission : Admission.t;
  cache : Cache.t;
  inflight : (string, inflight) Hashtbl.t;
  inflight_lock : Mutex.t;
  stop_watchdog : bool Atomic.t;
  watchdog : unit Domain.t option;
  mutable accepting : bool;
  state_lock : Mutex.t;
}

(* -- watchdog ------------------------------------------------------------- *)

let watchdog_scan t =
  let now = Unix.gettimeofday () in
  Mutex.lock t.inflight_lock;
  let stuck =
    Hashtbl.fold
      (fun id entry acc ->
        match entry.deadline with
        | Some d
          when now > d +. t.config.watchdog_grace
               && not (Cancel.cancelled entry.token) ->
            (id, entry.token) :: acc
        | _ -> acc)
      t.inflight []
  in
  Mutex.unlock t.inflight_lock;
  List.iter
    (fun (id, token) ->
      Metrics.incr (Lazy.force watchdog_cancels);
      Trace.instant ~args:[ ("request", Trace.Str id) ] "svc.watchdog_cancel";
      Cancel.cancel token)
    stuck

let register_inflight t ~id ~deadline ~token =
  Mutex.lock t.inflight_lock;
  Hashtbl.replace t.inflight id { deadline; token };
  Mutex.unlock t.inflight_lock

let unregister_inflight t ~id =
  Mutex.lock t.inflight_lock;
  Hashtbl.remove t.inflight id;
  Mutex.unlock t.inflight_lock

(* -- construction --------------------------------------------------------- *)

let create ?(config = default_config) () =
  let config = { config with jobs = max 1 config.jobs } in
  let t =
    {
      config;
      (* [jobs] dedicated workers: width jobs+1 counts the submitting
         thread, which serves the wire loop and does not help *)
      pool = Pool.create (config.jobs + 1);
      admission =
        Admission.create ~retry_after:config.retry_after
          ~watermark:config.watermark ();
      cache = Cache.create ?dir:config.cache_dir ~mem_capacity:config.cache_mem ();
      inflight = Hashtbl.create 32;
      inflight_lock = Mutex.create ();
      stop_watchdog = Atomic.make false;
      watchdog = None;
      accepting = true;
      state_lock = Mutex.create ();
    }
  in
  let watchdog =
    Domain.spawn (fun () ->
        while not (Atomic.get t.stop_watchdog) do
          watchdog_scan t;
          Unix.sleepf t.config.watchdog_period
        done)
  in
  { t with watchdog = Some watchdog }

let cache_quarantined_on_open t = Cache.quarantined_on_open t.cache

(* -- cache key and payload serialization ---------------------------------- *)

let cache_key (req : request) =
  let buf = Buffer.create 512 in
  Buffer.add_string buf "qxmapd-v1\n";
  Buffer.add_string buf req.device_name;
  Buffer.add_char buf '\n';
  Buffer.add_string buf (string_of_int (Coupling.num_qubits req.device));
  List.iter
    (fun (a, b) -> Buffer.add_string buf (Printf.sprintf " %d>%d" a b))
    (Coupling.edges req.device);
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Strategy.name req.strategy);
  Buffer.add_char buf '\n';
  (match req.budget with
  | None -> Buffer.add_string buf "unbounded"
  | Some b -> Buffer.add_string buf (Printf.sprintf "%.6f" b));
  Buffer.add_char buf '\n';
  Buffer.add_string buf (Qasm.to_string req.circuit);
  Chash.digest (Buffer.contents buf)

let json_of_payload (p : payload) =
  Sjson.Obj
    [
      ("qasm", Sjson.Str p.qasm);
      ("f_cost", Sjson.Num (float_of_int p.f_cost));
      ("total_gates", Sjson.Num (float_of_int p.total_gates));
      ("provenance", Sjson.Str p.provenance);
      ("optimal", Sjson.Bool p.optimal);
      ( "verified",
        match p.verified with None -> Sjson.Null | Some b -> Sjson.Bool b );
      ("notes", Sjson.List (List.map (fun n -> Sjson.Str n) p.notes));
      ("runtime_s", Sjson.Num p.runtime);
    ]

let payload_of_json j =
  let str k = Option.bind (Sjson.member k j) Sjson.to_string_opt in
  let num k = Option.bind (Sjson.member k j) Sjson.to_int_opt in
  match (str "qasm", num "f_cost", num "total_gates", str "provenance") with
  | Some qasm, Some f_cost, Some total_gates, Some provenance ->
      Ok
        {
          qasm;
          f_cost;
          total_gates;
          provenance;
          optimal =
            Option.value ~default:false
              (Option.bind (Sjson.member "optimal" j) Sjson.to_bool_opt);
          verified =
            Option.bind (Sjson.member "verified" j) Sjson.to_bool_opt;
          notes =
            (match Sjson.member "notes" j with
            | Some (Sjson.List items) ->
                List.filter_map Sjson.to_string_opt items
            | _ -> []);
          runtime =
            Option.value ~default:0.0
              (Option.bind (Sjson.member "runtime_s" j) Sjson.to_float_opt);
          cached = false;
          attempts = 0;
        }
  | _ -> Error "payload missing required fields"

(* A cache hit is only served after the stored circuit re-passes
   structural certification against the *requested* architecture: a
   colliding key, a stale device definition or silent corruption that
   beat the checksum all fail here and fall through to a fresh solve. *)
let verified_hit ~(req : request) payload_str =
  match Sjson.parse payload_str with
  | Error e -> Error e
  | Ok j -> (
      match payload_of_json j with
      | Error e -> Error e
      | Ok p -> (
          match Qasm.parse_string p.qasm with
          | exception Qasm.Parse_error { message; _ } -> Error message
          | circuit -> (
              match Certify.compliance ~arch:req.device circuit with
              | Error e -> Error ("certification failed: " ^ e)
              | Ok () -> Ok { p with cached = true; attempts = 0 })))

(* -- certificate store ----------------------------------------------------

   With certificates enabled and a disk cache tier configured, every
   freshly solved proven-optimal answer leaves a QXMCERT1 artifact at
   <cache-dir>/<key>.cert.json, next to the cache entry it vouches for.
   The `audit` wire op (and the offline qxm_audit binary) re-validates
   it without trusting this process. *)

let certificate_path t ~key =
  Option.map
    (fun dir -> Filename.concat dir (key ^ ".cert.json"))
    (Cache.dir t.cache)

let store_certificate t (req : request) ~key (r : Portfolio.report) =
  if t.config.certificates && r.Portfolio.optimal then
    match certificate_path t ~key with
    | None -> ()
    | Some path -> (
        let options =
          {
            t.config.portfolio with
            Portfolio.exact =
              {
                t.config.portfolio.exact with
                Mapper.strategy = req.strategy;
                certificate = true;
              };
          }
        in
        match
          Qxm_audit.Emit.of_portfolio ~device_name:req.device_name
            ~arch:req.device ~circuit:req.circuit ~options r
        with
        | Ok cert ->
            let tmp = path ^ ".tmp" in
            Out_channel.with_open_bin tmp (fun oc ->
                Out_channel.output_string oc
                  (Qxm_audit.Certificate.to_string cert));
            Sys.rename tmp path;
            Metrics.incr (Lazy.force certs_emitted)
        | Error _ | (exception _) -> Metrics.incr (Lazy.force cert_failures))

let audit_certificate t ~key =
  match certificate_path t ~key with
  | None -> Error "certificates require a disk cache (--cache-dir)"
  | Some path ->
      if not (Sys.file_exists path) then
        Error (Printf.sprintf "no certificate stored for key %s" key)
      else
        let contents =
          In_channel.with_open_bin path In_channel.input_all
        in
        Ok (Qxm_audit.Auditor.audit_string contents)

(* -- request execution ---------------------------------------------------- *)

exception Permanent of string

let failure_string e = Format.asprintf "%a" Portfolio.pp_failure e

let solve t ?key (req : request) : response =
  let budget =
    match req.budget with None -> t.config.default_budget | b -> b
  in
  let token = Cancel.create () in
  let deadline = Option.map (fun b -> Unix.gettimeofday () +. b) budget in
  register_inflight t ~id:req.req_id ~deadline ~token;
  let attempts = ref 0 in
  Fun.protect
    ~finally:(fun () -> unregister_inflight t ~id:req.req_id)
    (fun () ->
      let attempt ~attempt:_ =
        incr attempts;
        (* Deadline already blown (watchdog fired, or spent by earlier
           attempts): retrying cannot help — fail rather than loop. *)
        if Cancel.cancelled token then
          raise
            (Permanent "deadline expired before a certified answer was found");
        (match deadline with
        | Some d when Unix.gettimeofday () >= d ->
            raise
              (Permanent
                 "deadline expired before a certified answer was found")
        | _ -> ());
        let remaining =
          Option.map (fun d -> Float.max 0.01 (d -. Unix.gettimeofday ())) deadline
        in
        let options =
          {
            t.config.portfolio with
            exact =
              {
                t.config.portfolio.exact with
                strategy = req.strategy;
                jobs = 1;
                certificate = t.config.certificates;
              };
            budget = remaining;
            (* one worker per request: throughput comes from the pool *)
            jobs = 1;
          }
        in
        match Portfolio.run ~options ~cancel:token ~arch:req.device req.circuit with
        | Ok r -> Ok r
        | Error (Portfolio.Too_many_logical _ as e) ->
            raise (Permanent (failure_string e))
        | Error (Portfolio.Exhausted _ as e) -> Error (failure_string e)
        | exception Permanent msg -> raise (Permanent msg)
        | exception e -> Error (Printexc.to_string e)
      in
      match
        Backoff.retry ~sleep:t.config.sleep t.config.retry
          ~on_retry:(fun ~attempt:_ ~delay:_ ->
            Metrics.incr (Lazy.force retries_total))
          attempt
      with
      | Ok (r : Portfolio.report) ->
          if
            List.mem "deadline_expired" r.notes
            || List.mem "cancelled" r.notes
          then Metrics.incr (Lazy.force deadline_expiries);
          Option.iter (fun key -> store_certificate t req ~key r) key;
          Done
            {
              qasm = Qasm.to_string r.elementary;
              f_cost = r.f_cost;
              total_gates = r.total_gates;
              provenance = Portfolio.provenance_string r.provenance;
              optimal = r.optimal;
              verified = r.verified;
              notes = r.notes;
              runtime = r.runtime;
              cached = false;
              attempts = !attempts;
            }
      | Error msg -> Failed msg
      | exception Permanent msg -> Failed msg
      | exception e -> Failed (Printexc.to_string e))

let handle t (req : request) : response =
  Metrics.incr (Lazy.force requests_total);
  Trace.with_span ~name:"svc.request"
    ~args:[ ("id", Trace.Str req.req_id) ]
  @@ fun () ->
  let use_cache = t.config.use_cache && req.use_cache in
  let key = cache_key req in
  let cached =
    if not use_cache then None
    else
      match Cache.find t.cache ~key with
      | None -> None
      | Some payload_str -> (
          match verified_hit ~req payload_str with
          | Ok p ->
              Metrics.incr (Lazy.force hits_served);
              Some p
          | Error _ ->
              (* quarantine, don't serve: fall through to a fresh solve *)
              Metrics.incr (Lazy.force verify_rejects);
              Cache.invalidate t.cache ~key;
              None)
  in
  let response =
    match cached with
    | Some p -> Done p
    | None -> (
        match solve t ~key req with
        | Done p as resp ->
            if use_cache then
              Cache.store t.cache ~key (Sjson.print (json_of_payload p));
            resp
        | resp -> resp)
  in
  (match response with
  | Done _ -> Metrics.incr (Lazy.force done_total)
  | Failed _ -> Metrics.incr (Lazy.force failed_total)
  | Rejected _ | Shed _ -> Metrics.incr (Lazy.force rejected_total));
  response

let guarded t req =
  match Admission.try_admit t.admission with
  | Shed { depth; retry_after } -> `Shed (Shed { depth; retry_after })
  | Admitted ->
      if
        Mutex.lock t.state_lock;
        let a = t.accepting in
        Mutex.unlock t.state_lock;
        not a
      then begin
        Admission.release t.admission;
        `Shed (Rejected "daemon is shutting down")
      end
      else `Run req

let submit t req =
  match guarded t req with
  | `Shed resp -> resp
  | `Run req ->
      Fun.protect
        ~finally:(fun () -> Admission.release t.admission)
        (fun () -> try handle t req with e -> Failed (Printexc.to_string e))

let submit_async t req callback =
  match guarded t req with
  | `Shed resp -> callback resp
  | `Run req ->
      ignore
        (Pool.submit ~label:"svc.request" t.pool (fun () ->
             Fun.protect
               ~finally:(fun () -> Admission.release t.admission)
               (fun () ->
                 let resp =
                   try handle t req with e -> Failed (Printexc.to_string e)
                 in
                 callback resp)))

let drain t =
  (* Admission depth counts queued + running requests; sheds release
     synchronously, so depth 0 means quiescent. *)
  while Admission.depth t.admission > 0 do
    Unix.sleepf 0.005
  done

let shutdown t =
  Mutex.lock t.state_lock;
  let was = t.accepting in
  t.accepting <- false;
  Mutex.unlock t.state_lock;
  drain t;
  if was then begin
    Atomic.set t.stop_watchdog true;
    Option.iter Domain.join t.watchdog;
    Pool.shutdown t.pool
  end

(* -- wire protocol -------------------------------------------------------- *)

let parse_request ?(default_device = (Devices.qx4, "qx4"))
    ?(default_budget = None) ?gen_id j =
  let str k = Option.bind (Sjson.member k j) Sjson.to_string_opt in
  let id =
    match (str "id", gen_id) with
    | Some id, _ -> Ok id
    | None, Some gen -> Ok (gen ())
    | None, None -> Error "missing 'id'"
  in
  match id with
  | Error e -> Error e
  | Ok req_id -> (
      match str "qasm" with
      | None -> Error "missing 'qasm' field"
      | Some qasm -> (
          match Qasm.parse_string qasm with
          | exception Qasm.Parse_error { line; message } ->
              Error (Printf.sprintf "qasm:%d: %s" line message)
          | circuit -> (
              if Circuit.count_swaps circuit > 0 then
                Error
                  "circuit contains SWAP gates; decompose them before \
                   submitting"
              else
                let device =
                  match str "device" with
                  | None -> Ok default_device
                  | Some name -> (
                      match Devices.by_name name with
                      | Some d -> Ok (d, name)
                      | None ->
                          Error
                            (Printf.sprintf "unknown device %S (try: %s)" name
                               (String.concat ", " Devices.names)))
                in
                match device with
                | Error e -> Error e
                | Ok (device, device_name) -> (
                    let strategy =
                      match str "strategy" with
                      | None -> Ok Strategy.Minimal
                      | Some name -> (
                          match Strategy.of_string name with
                          | Some s -> Ok s
                          | None ->
                              Error (Printf.sprintf "unknown strategy %S" name))
                    in
                    match strategy with
                    | Error e -> Error e
                    | Ok strategy -> (
                        let budget =
                          match Sjson.member "budget" j with
                          | None | Some Sjson.Null -> Ok default_budget
                          | Some (Sjson.Num b) ->
                              Result.map Option.some
                                (Validate.pos_float ~flag:"budget"
                                   ~unit:"seconds" b)
                          | Some (Sjson.Str s) ->
                              Result.map Option.some
                                (Validate.parse_pos_float ~flag:"budget"
                                   ~unit:"seconds" s)
                          | Some _ ->
                              Error
                                "budget must be a positive finite number of \
                                 seconds"
                        in
                        match budget with
                        | Error e -> Error e
                        | Ok budget ->
                            let use_cache =
                              Option.value ~default:true
                                (Option.bind (Sjson.member "cache" j)
                                   Sjson.to_bool_opt)
                            in
                            Ok
                              {
                                req_id;
                                circuit;
                                device;
                                device_name;
                                strategy;
                                budget;
                                use_cache;
                              })))))

let response_json ~id resp =
  let base = [ ("id", Sjson.Str id) ] in
  match resp with
  | Done p ->
      Sjson.Obj
        (base
        @ [
            ("status", Sjson.Str "ok");
            ("cached", Sjson.Bool p.cached);
            ("attempts", Sjson.Num (float_of_int p.attempts));
            ("f_cost", Sjson.Num (float_of_int p.f_cost));
            ("total_gates", Sjson.Num (float_of_int p.total_gates));
            ("provenance", Sjson.Str p.provenance);
            ("optimal", Sjson.Bool p.optimal);
            ( "verified",
              match p.verified with
              | None -> Sjson.Null
              | Some b -> Sjson.Bool b );
            ("notes", Sjson.List (List.map (fun n -> Sjson.Str n) p.notes));
            ("runtime_s", Sjson.Num p.runtime);
            ("qasm", Sjson.Str p.qasm);
          ])
  | Shed { depth; retry_after } ->
      Sjson.Obj
        (base
        @ [
            ("status", Sjson.Str "shed");
            ("depth", Sjson.Num (float_of_int depth));
            ("retry_after_s", Sjson.Num retry_after);
          ])
  | Rejected msg ->
      Sjson.Obj (base @ [ ("status", Sjson.Str "invalid"); ("error", Sjson.Str msg) ])
  | Failed msg ->
      Sjson.Obj (base @ [ ("status", Sjson.Str "error"); ("error", Sjson.Str msg) ])

let metrics_text () =
  let buf = Buffer.create 1024 in
  List.iter
    (fun (name, value) ->
      match value with
      | Metrics.Count c -> Buffer.add_string buf (Printf.sprintf "%s %d\n" name c)
      | Metrics.Level l ->
          Buffer.add_string buf (Printf.sprintf "%s %g\n" name l)
      | Metrics.Buckets b ->
          Buffer.add_string buf name;
          Buffer.add_string buf " [";
          Array.iteri
            (fun i v ->
              if i > 0 then Buffer.add_char buf ' ';
              Buffer.add_string buf (string_of_int v))
            b;
          Buffer.add_string buf "]\n")
    (Metrics.snapshot ());
  Buffer.contents buf
