(** The mapping service core: long-lived request execution over the
    thread-safe substrate, with deadlines, admission control, retries
    and the recoverable result cache.

    This is the library behind the [qxmapd] binary (which adds only the
    line-JSON wire loop).  One daemon owns:

    - a worker pool ({!Qxm_par.Pool}) that requests fan out on; each
      request runs the resilient {!Qxm_exact.Portfolio} sequentially on
      its worker, so throughput comes from request-level parallelism
      and a single request can never starve the fleet;
    - {!Admission} control: past the configured watermark, requests are
      shed immediately with a retry-after hint instead of queueing into
      certain deadline misses;
    - per-request deadlines: the request budget becomes the portfolio's
      wall-clock budget {e and} a supervisor {!Qxm_par.Cancel} token
      registered with a watchdog domain that force-cancels any request
      still running past its deadline plus a grace period — an expired
      request returns the portfolio's best certified incumbent (with a
      [deadline_expired] note), never an uncertified answer and never a
      hang;
    - a {!Backoff} retry loop around transient failures (an
      [Exhausted] portfolio, an injected fault storm), deterministic
      and test-injectable via [config.sleep];
    - the two-tier {!Cache}; every hit is re-parsed and re-verified
      through [Certify.compliance] against the {e requested}
      architecture before it is served, and a hit that fails
      verification is quarantined and falls through to a fresh solve.

    All entry points are thread-safe.  See [doc/SERVICE.md] for the
    wire protocol, cache format and the operational runbook. *)

module Sjson = Qxm_json.Sjson
(** Re-exported so existing [Qxm_svc.Daemon.Sjson] users keep
    compiling; the module itself now lives in [Qxm_json]. *)

type config = {
  jobs : int;  (** worker domains executing requests (>= 1) *)
  watermark : int;  (** max in-flight requests before shedding *)
  retry_after : float;  (** base of the shed retry-after hint, seconds *)
  default_budget : float option;
      (** budget applied when a request carries none; [None] = requests
          without a budget run unbounded *)
  retry : Backoff.policy;  (** transient-failure retry schedule *)
  sleep : float -> unit;
      (** how retry delays are slept (default [Unix.sleepf]; tests
          inject a recorder so no test ever blocks on the wall clock) *)
  cache_dir : string option;  (** disk tier location; [None] = memory only *)
  cache_mem : int;  (** in-memory tier capacity (entries) *)
  use_cache : bool;  (** master switch for the result cache *)
  certificates : bool;
      (** emit a QXMCERT1 optimality certificate next to the cache
          entry ([<key>.cert.json] under [cache_dir]) for every freshly
          solved proven-optimal answer; requires a disk cache tier.
          Off by default: proof logging costs memory and certificates
          only exist for [Exact_optimal] answers. *)
  watchdog_period : float;  (** watchdog scan interval, seconds *)
  watchdog_grace : float;
      (** seconds past a request's deadline before the watchdog
          force-cancels it (the portfolio is expected to return by the
          deadline on its own; the watchdog is the backstop for stuck
          lanes) *)
  portfolio : Qxm_exact.Portfolio.options;
      (** base portfolio options; [budget], [jobs] and the strategy are
          overridden per request *)
}

val default_config : config
(** 2 workers, watermark 32, no default budget, {!Backoff.default},
    memory-only cache of 128 entries, 50 ms watchdog period with 0.5 s
    grace. *)

type request = {
  req_id : string;
  circuit : Qxm_circuit.Circuit.t;
  device : Qxm_arch.Coupling.t;
  device_name : string;
  strategy : Qxm_exact.Strategy.t;
  budget : float option;  (** wall-clock deadline for this request *)
  use_cache : bool;
}

type payload = {
  qasm : string;  (** elementary mapped circuit, OpenQASM *)
  f_cost : int;
  total_gates : int;
  provenance : string;  (** {!Qxm_exact.Portfolio.provenance_string} *)
  optimal : bool;
  verified : bool option;
  notes : string list;
  runtime : float;
  cached : bool;  (** served from the cache (after re-verification) *)
  attempts : int;  (** solve attempts spent (0 for a cache hit) *)
}

type response =
  | Done of payload
  | Shed of { depth : int; retry_after : float }
      (** admission control rejected the request; retry later *)
  | Rejected of string  (** the request itself is invalid; do not retry *)
  | Failed of string
      (** every attempt failed (or the deadline expired with nothing
          certified); the message says why *)

type t

val create : ?config:config -> unit -> t
(** Build the pool, watchdog and cache; runs the cache recovery scan. *)

val cache_quarantined_on_open : t -> int

val submit : t -> request -> response
(** Execute synchronously on the calling thread (admission control still
    applies).  Never raises: internal errors become [Failed]. *)

val submit_async : t -> request -> (response -> unit) -> unit
(** Enqueue on the pool; the callback fires on a worker domain (sheds
    fire synchronously on the caller).  The callback must be
    thread-safe. *)

val drain : t -> unit
(** Block until every in-flight request has completed. *)

val shutdown : t -> unit
(** Stop admitting, drain, stop the watchdog, shut the pool down.
    Idempotent. *)

(** {1 Wire protocol helpers} *)

val parse_request :
  ?default_device:Qxm_arch.Coupling.t * string ->
  ?default_budget:float option ->
  ?gen_id:(unit -> string) ->
  Sjson.t ->
  (request, string) result
(** Decode a ["map"] request object ([qasm] required; [id], [device],
    [strategy], [budget], [cache] optional).  Numeric fields go through
    {!Validate} — a zero, negative or NaN [budget] is rejected with the
    same one-line message the CLI prints.  Circuits with SWAP gates and
    unknown devices/strategies are rejected here, before any solver
    runs. *)

val response_json : id:string -> response -> Sjson.t
(** The wire encoding of a response ([status] of [ok], [shed],
    [invalid] or [error]). *)

val payload_of_json : Sjson.t -> (payload, string) result
(** Decode a stored cache payload (used internally and by tests). *)

val cache_key : request -> string
(** The content digest this request caches under: circuit QASM, device
    edge list, strategy, budget and cost model. *)

val certificate_path : t -> key:string -> string option
(** Where the certificate for a {!cache_key} lives ([None] without a
    disk cache tier).  The file exists once a proven-optimal answer for
    that key has been solved with [config.certificates] on. *)

val audit_certificate :
  t -> key:string -> (Qxm_audit.Auditor.report, string) result
(** Load the stored certificate for a {!cache_key} and re-validate it
    with the independent offline auditor ({!Qxm_audit.Auditor.run}).
    [Error] when certificates are not stored (no disk cache) or none
    exists for the key. *)

val metrics_text : unit -> string
(** The [/metrics]-style snapshot of the whole registry: one
    [name value] line per counter/gauge, [name [b0 b1 ...]] per
    histogram, sorted by name. *)
