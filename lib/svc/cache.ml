module Metrics = Qxm_obs.Metrics

let hits_mem = lazy (Metrics.counter "svc.cache_hits_mem")
let hits_disk = lazy (Metrics.counter "svc.cache_hits_disk")
let misses = lazy (Metrics.counter "svc.cache_misses")
let stores = lazy (Metrics.counter "svc.cache_stores")
let store_errors = lazy (Metrics.counter "svc.cache_store_errors")
let evictions = lazy (Metrics.counter "svc.cache_evictions")
let quarantined = lazy (Metrics.counter "svc.cache_quarantined")

let magic = "QXMCACHE1"

type t = {
  lock : Mutex.t;
  dir : string option;
  mem_capacity : int;
  mem : (string, string * int ref) Hashtbl.t;  (* key -> payload, LRU tick *)
  mutable tick : int;
  mutable opened_quarantined : int;
  mutable quarantine_seq : int;
}

let entry_file key = key ^ ".entry"
let entry_path dir key = Filename.concat dir (entry_file key)
let quarantine_dir dir = Filename.concat dir "quarantine"

(* -- disk format ---------------------------------------------------------- *)

let encode payload =
  Printf.sprintf "%s %s %d\n%s" magic (Chash.digest payload)
    (String.length payload) payload

(* Validate a whole entry file's contents; the payload on success, a
   reason on any malformation (truncation, bit flips, foreign bytes). *)
let decode contents =
  match String.index_opt contents '\n' with
  | None -> Error "no header line"
  | Some nl -> (
      let header = String.sub contents 0 nl in
      match String.split_on_char ' ' header with
      | [ m; digest; len ] -> (
          if m <> magic then Error "bad magic"
          else
            match int_of_string_opt len with
            | None -> Error "malformed length"
            | Some len ->
                let have = String.length contents - nl - 1 in
                if have <> len then
                  Error
                    (Printf.sprintf "truncated payload (%d of %d bytes)" have
                       len)
                else
                  let payload = String.sub contents (nl + 1) len in
                  if Chash.digest payload <> digest then
                    Error "checksum mismatch"
                  else Ok payload)
      | _ -> Error "malformed header")

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

(* -- quarantine ----------------------------------------------------------- *)

(* Move a damaged file aside, preserving it for inspection.  Unique
   destination names survive repeated quarantines of same-named files
   across restarts. *)
let quarantine_file t ~dir path =
  let qdir = quarantine_dir dir in
  (try Unix.mkdir qdir 0o755 with Unix.Unix_error (Unix.EEXIST, _, _) -> ());
  t.quarantine_seq <- t.quarantine_seq + 1;
  let dest =
    Filename.concat qdir
      (Printf.sprintf "%s.%d.%d" (Filename.basename path) (Unix.getpid ())
         t.quarantine_seq)
  in
  (try Sys.rename path dest
   with Sys_error _ -> ( try Sys.remove path with Sys_error _ -> ()));
  Metrics.incr (Lazy.force quarantined)

(* -- recovery scan -------------------------------------------------------- *)

let is_tmp name =
  String.length name >= 4
  && (String.sub name 0 4 = ".tmp"
     || Filename.check_suffix name ".tmp")

let recover t dir =
  let names = try Sys.readdir dir with Sys_error _ -> [||] in
  Array.iter
    (fun name ->
      let path = Filename.concat dir name in
      if not (Sys.is_directory path) then
        if is_tmp name then begin
          (* a write that never reached its rename: the crash artifact *)
          quarantine_file t ~dir path;
          t.opened_quarantined <- t.opened_quarantined + 1
        end
        else if Filename.check_suffix name ".entry" then
          match decode (read_file path) with
          | Ok _ -> ()
          | Error _ | (exception Sys_error _) | (exception End_of_file) ->
              quarantine_file t ~dir path;
              t.opened_quarantined <- t.opened_quarantined + 1)
    names

(* -- construction --------------------------------------------------------- *)

let rec mkdir_p path =
  if path <> "" && path <> "." && path <> "/" && not (Sys.file_exists path)
  then begin
    mkdir_p (Filename.dirname path);
    try Unix.mkdir path 0o755
    with Unix.Unix_error (Unix.EEXIST, _, _) -> ()
  end

let create ?dir ?(mem_capacity = 128) () =
  if mem_capacity <= 0 then
    invalid_arg "Cache.create: mem_capacity must be positive";
  let t =
    {
      lock = Mutex.create ();
      dir;
      mem_capacity;
      mem = Hashtbl.create 64;
      tick = 0;
      opened_quarantined = 0;
      quarantine_seq = 0;
    }
  in
  Option.iter
    (fun d ->
      mkdir_p d;
      recover t d)
    dir;
  t

let quarantined_on_open t = t.opened_quarantined
let dir t = t.dir

(* -- memory tier (caller holds the lock) ---------------------------------- *)

let touch t tick_ref =
  t.tick <- t.tick + 1;
  tick_ref := t.tick

let mem_insert t key payload =
  (match Hashtbl.find_opt t.mem key with
  | Some (_, tick_ref) ->
      Hashtbl.replace t.mem key (payload, tick_ref);
      touch t tick_ref
  | None ->
      let tick_ref = ref 0 in
      touch t tick_ref;
      Hashtbl.replace t.mem key (payload, tick_ref));
  (* evict least-recently-used overflow *)
  while Hashtbl.length t.mem > t.mem_capacity do
    let victim = ref None in
    Hashtbl.iter
      (fun k (_, tick_ref) ->
        match !victim with
        | Some (_, best) when best <= !tick_ref -> ()
        | _ -> victim := Some (k, !tick_ref))
      t.mem;
    match !victim with
    | Some (k, _) ->
        Hashtbl.remove t.mem k;
        Metrics.incr (Lazy.force evictions)
    | None -> ()
  done

(* -- disk tier ------------------------------------------------------------ *)

let disk_write t key payload =
  match t.dir with
  | None -> ()
  | Some dir -> (
      try
        let final = entry_path dir key in
        let tmp =
          Filename.concat dir
            (Printf.sprintf ".tmp.%s.%d" key (Unix.getpid ()))
        in
        let fd =
          Unix.openfile tmp [ Unix.O_WRONLY; Unix.O_CREAT; Unix.O_TRUNC ]
            0o644
        in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            let bytes = encode payload in
            let written =
              Unix.write_substring fd bytes 0 (String.length bytes)
            in
            if written <> String.length bytes then failwith "short write";
            Unix.fsync fd);
        Sys.rename tmp final
      with _ -> Metrics.incr (Lazy.force store_errors))

let disk_read t key =
  match t.dir with
  | None -> None
  | Some dir -> (
      let path = entry_path dir key in
      if not (Sys.file_exists path) then None
      else
        match decode (read_file path) with
        | Ok payload -> Some payload
        | Error _ | (exception Sys_error _) | (exception End_of_file) ->
            (* late corruption: same treatment as the startup scan *)
            quarantine_file t ~dir path;
            None)

(* -- public operations ---------------------------------------------------- *)

let find t ~key =
  Mutex.lock t.lock;
  let result =
    match Hashtbl.find_opt t.mem key with
    | Some (payload, tick_ref) ->
        touch t tick_ref;
        Metrics.incr (Lazy.force hits_mem);
        Some payload
    | None -> (
        match disk_read t key with
        | Some payload ->
            mem_insert t key payload;
            Metrics.incr (Lazy.force hits_disk);
            Some payload
        | None ->
            Metrics.incr (Lazy.force misses);
            None)
  in
  Mutex.unlock t.lock;
  result

let store t ~key payload =
  Mutex.lock t.lock;
  mem_insert t key payload;
  disk_write t key payload;
  Metrics.incr (Lazy.force stores);
  Mutex.unlock t.lock

let invalidate t ~key =
  Mutex.lock t.lock;
  Hashtbl.remove t.mem key;
  (match t.dir with
  | Some dir when Sys.file_exists (entry_path dir key) ->
      quarantine_file t ~dir (entry_path dir key)
  | _ -> ());
  Mutex.unlock t.lock

let mem_size t =
  Mutex.lock t.lock;
  let n = Hashtbl.length t.mem in
  Mutex.unlock t.lock;
  n
