(** Validation of user-supplied numeric parameters.

    Every numeric knob that reaches the mapping engines — wall-clock
    budgets, retry counts, queue capacities — must be rejected at the
    boundary when it is zero, negative, NaN or infinite, with a one-line
    actionable message naming the flag.  Both the [qxmap] CLI options
    and the [qxmapd] request parser funnel through these checks, so a
    bad value can never reach the solvers as an "undefined behaviour"
    deadline (a NaN deadline, for instance, makes every comparison
    false and disables the budget entirely).

    Error strings are complete sentences of the form
    ["--timeout must be a positive finite number of seconds, got '0'"]
    — suitable for printing verbatim on stderr or returning in a daemon
    error response. *)

val pos_float : flag:string -> ?unit:string -> float -> (float, string) result
(** Accept strictly positive finite floats.  [unit] names the unit in
    the error message (e.g. ["seconds"]). *)

val pos_int : flag:string -> ?unit:string -> int -> (int, string) result
(** Accept strictly positive integers. *)

val non_neg_int : flag:string -> ?unit:string -> int -> (int, string) result
(** Accept integers [>= 0] (e.g. a retry count, where 0 disables). *)

val parse_pos_float : flag:string -> ?unit:string -> string -> (float, string) result
(** Parse then validate like {!pos_float}; a string that is not a number
    at all gets the same shape of message. *)

val parse_pos_int : flag:string -> ?unit:string -> string -> (int, string) result
