(** Admission control: a bounded in-flight counter with load shedding.

    The daemon's queue over [Qxm_par.Pool] is unbounded by construction
    (submit never blocks), so the bound lives here: every request that
    enters the service first passes {!try_admit}, which counts it
    against a watermark.  Past the watermark the request is {e shed} —
    rejected immediately with a suggested retry-after — instead of
    growing an unbounded backlog whose tail would blow every deadline
    anyway (each queued request still pays its full solve once it
    reaches a worker).  Shedding early keeps the latency of accepted
    requests bounded, which is what a deadline-driven client actually
    wants from an overloaded server.

    Thread-safe: admit/release are mutex-protected; the depth is also
    published to the [svc.queue_depth] gauge and sheds are counted on
    [svc.sheds]. *)

type t

type verdict =
  | Admitted
  | Shed of { depth : int; retry_after : float }
      (** Rejected: current depth and the seconds the client should wait
          before retrying (scales with how far past the watermark the
          queue is). *)

val create : ?retry_after:float -> watermark:int -> unit -> t
(** [watermark] is the maximum number of in-flight (queued + running)
    requests; it must be positive.  [retry_after] (default 0.1 s) is the
    base unit of the shed hint.
    @raise Invalid_argument on a non-positive watermark. *)

val try_admit : t -> verdict
(** Reserve a slot or shed.  An [Admitted] verdict must be paired with
    exactly one {!release}. *)

val release : t -> unit
(** Return a slot.  Calling it without a matching admit is a bug; the
    depth is clamped at zero and the imbalance counted on
    [svc.admission_imbalance]. *)

val depth : t -> int
(** Current in-flight count. *)

val sheds : t -> int
(** Requests shed since creation (this instance, not the global
    counter). *)
