type policy = {
  max_attempts : int;
  base : float;
  factor : float;
  max_delay : float;
  jitter : float;
  seed : int;
}

let default =
  {
    max_attempts = 3;
    base = 0.05;
    factor = 4.0;
    max_delay = 2.0;
    jitter = 0.2;
    seed = 1;
  }

(* splitmix64 finalizer: a well-mixed 64-bit hash of (seed, attempt),
   giving an independent uniform draw per attempt without any state. *)
let uniform ~seed ~attempt =
  let z =
    Int64.add
      (Int64.mul (Int64.of_int seed) 0x9E3779B97F4A7C15L)
      (Int64.mul (Int64.of_int attempt) 0xBF58476D1CE4E5B9L)
  in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30))
      0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27))
      0x94D049BB133111EBL in
  let z = Int64.logxor z (Int64.shift_right_logical z 31) in
  let mant = Int64.to_int (Int64.shift_right_logical z 11) in
  float_of_int mant /. 9007199254740992.0 (* 2^53 *)

let delay p ~attempt =
  let raw = p.base *. (p.factor ** float_of_int (max 0 (attempt - 1))) in
  let capped = Float.min raw p.max_delay in
  let u = uniform ~seed:p.seed ~attempt in
  capped *. (1.0 -. p.jitter +. (p.jitter *. u))

let retry ?(sleep = Unix.sleepf) p ?(on_retry = fun ~attempt:_ ~delay:_ -> ())
    f =
  let attempts = max 1 p.max_attempts in
  let rec go attempt =
    match f ~attempt with
    | Ok _ as ok -> ok
    | Error _ as err ->
        if attempt >= attempts then err
        else begin
          let d = delay p ~attempt in
          on_retry ~attempt ~delay:d;
          sleep d;
          go (attempt + 1)
        end
  in
  go 1
