(** Content-addressed result cache: in-memory LRU over a crash-safe
    persistent disk tier.

    Keys are 32-hex-digit content digests ({!Chash.digest} of the
    request's canonical bytes: circuit QASM, device edges, strategy,
    budget, cost model); values are opaque payload strings (the daemon
    stores the serialized response).  The cache never interprets the
    payload — the daemon re-verifies every hit through [Certify] before
    serving it, and calls {!invalidate} if verification fails.

    {2 Disk format and crash safety}

    One entry per file, [<key>.entry], containing a single header line
    [QXMCACHE1 <payload-digest> <payload-length>] followed by the raw
    payload bytes.  Writes go to a [.tmp] sibling first, are flushed
    and fsynced, then renamed over the final name — on POSIX the rename
    is atomic, so a reader (or a crash at any instant) sees either the
    complete old entry, the complete new entry, or a stray [.tmp] file,
    never a half-written [.entry].

    {2 Recovery}

    {!create} scans the directory: entries whose header is malformed,
    whose length disagrees with the file, or whose digest does not match
    the payload are moved into a [quarantine/] subdirectory (preserved
    for inspection, never deleted) and counted on the
    [svc.cache_quarantined] counter; leftover [.tmp] files from an
    interrupted write are quarantined the same way.  A corrupt entry is
    therefore an observable, recoverable event — the request that would
    have hit it falls through to a fresh solve — and never a startup
    failure.  The same validation runs on every disk read, so
    corruption that happens {e after} startup is caught (and
    quarantined) at hit time too. *)

type t

val create : ?dir:string -> ?mem_capacity:int -> unit -> t
(** [mem_capacity] (default 128) bounds the in-memory tier; [dir]
    enables the disk tier (created, with its quarantine subdirectory,
    if missing).  Runs the recovery scan.
    @raise Invalid_argument on a non-positive capacity.
    @raise Sys_error / Unix.Unix_error if [dir] cannot be created. *)

val quarantined_on_open : t -> int
(** Entries (and stray temp files) quarantined by this instance's
    startup scan. *)

val find : t -> key:string -> string option
(** Memory first, then disk (validated, then promoted to memory).
    Counts [svc.cache_hits_mem] / [svc.cache_hits_disk] /
    [svc.cache_misses]. *)

val store : t -> key:string -> string -> unit
(** Insert into both tiers (atomically on disk).  A disk-tier write
    failure (e.g. a full disk) degrades to memory-only and is counted
    on [svc.cache_store_errors] — the cache never takes the service
    down. *)

val invalidate : t -> key:string -> unit
(** Drop the key from memory and quarantine its disk entry (used when a
    hit fails [Certify] re-verification). *)

val mem_size : t -> int
val dir : t -> string option
