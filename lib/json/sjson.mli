(** Minimal JSON values for the daemon wire protocol.

    The repository emits JSON by hand in several places ([qxmap --json],
    the bench records); the daemon also has to {e read} it, because
    [qxmapd] requests arrive as one JSON object per line.  This module
    is a small, dependency-free value type with a strict recursive
    descent parser and a printer that round-trips through it.

    The parser accepts exactly the JSON grammar (RFC 8259) with two
    deliberate limits suited to a line protocol: numbers are parsed as
    OCaml floats, and [\uXXXX] escapes are decoded to UTF-8 (surrogate
    pairs included).  Any malformed input yields [Error] with a position
    and reason — never an exception — so a corrupt request line or a
    damaged cache entry degrades into a structured rejection. *)

type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

val parse : string -> (t, string) result
(** Parse one JSON document; trailing non-whitespace is an error. *)

val print : t -> string
(** Compact rendering; [parse (print v)] returns a value equal to [v]
    (object field order preserved). *)

(** {1 Accessors} *)

val member : string -> t -> t option
(** Field lookup on [Obj]; [None] on missing field or non-object. *)

val to_string_opt : t -> string option
val to_float_opt : t -> float option
val to_int_opt : t -> int option
(** [Num] with an integral value. *)

val to_bool_opt : t -> bool option
