type t =
  | Null
  | Bool of bool
  | Num of float
  | Str of string
  | List of t list
  | Obj of (string * t) list

(* -- printer -------------------------------------------------------------- *)

let escape buf s =
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s

let print_num f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.0f" f
  else Printf.sprintf "%.17g" f

let print v =
  let buf = Buffer.create 256 in
  let rec go = function
    | Null -> Buffer.add_string buf "null"
    | Bool b -> Buffer.add_string buf (string_of_bool b)
    | Num f -> Buffer.add_string buf (print_num f)
    | Str s ->
        Buffer.add_char buf '"';
        escape buf s;
        Buffer.add_char buf '"'
    | List items ->
        Buffer.add_char buf '[';
        List.iteri
          (fun i v ->
            if i > 0 then Buffer.add_string buf ", ";
            go v)
          items;
        Buffer.add_char buf ']'
    | Obj fields ->
        Buffer.add_char buf '{';
        List.iteri
          (fun i (k, v) ->
            if i > 0 then Buffer.add_string buf ", ";
            Buffer.add_char buf '"';
            escape buf k;
            Buffer.add_string buf "\": ";
            go v)
          fields;
        Buffer.add_char buf '}'
  in
  go v;
  Buffer.contents buf

(* -- parser --------------------------------------------------------------- *)

exception Fail of int * string

let parse s =
  let n = String.length s in
  let pos = ref 0 in
  let fail msg = raise (Fail (!pos, msg)) in
  let peek () = if !pos < n then Some s.[!pos] else None in
  let advance () = incr pos in
  let skip_ws () =
    while
      !pos < n
      && match s.[!pos] with ' ' | '\t' | '\n' | '\r' -> true | _ -> false
    do
      advance ()
    done
  in
  let expect c =
    match peek () with
    | Some c' when c' = c -> advance ()
    | Some c' -> fail (Printf.sprintf "expected '%c', found '%c'" c c')
    | None -> fail (Printf.sprintf "expected '%c', found end of input" c)
  in
  let literal word value =
    let l = String.length word in
    if !pos + l <= n && String.sub s !pos l = word then begin
      pos := !pos + l;
      value
    end
    else fail (Printf.sprintf "invalid literal (expected %s)" word)
  in
  (* UTF-8 encode one scalar value. *)
  let add_scalar buf u =
    if u < 0x80 then Buffer.add_char buf (Char.chr u)
    else if u < 0x800 then begin
      Buffer.add_char buf (Char.chr (0xC0 lor (u lsr 6)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else if u < 0x10000 then begin
      Buffer.add_char buf (Char.chr (0xE0 lor (u lsr 12)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
    else begin
      Buffer.add_char buf (Char.chr (0xF0 lor (u lsr 18)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 12) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor ((u lsr 6) land 0x3F)));
      Buffer.add_char buf (Char.chr (0x80 lor (u land 0x3F)))
    end
  in
  let hex4 () =
    if !pos + 4 > n then fail "truncated \\u escape";
    let v = ref 0 in
    for _ = 1 to 4 do
      let d =
        match s.[!pos] with
        | '0' .. '9' as c -> Char.code c - Char.code '0'
        | 'a' .. 'f' as c -> Char.code c - Char.code 'a' + 10
        | 'A' .. 'F' as c -> Char.code c - Char.code 'A' + 10
        | c -> fail (Printf.sprintf "bad hex digit '%c' in \\u escape" c)
      in
      v := (!v * 16) + d;
      advance ()
    done;
    !v
  in
  let parse_string () =
    expect '"';
    let buf = Buffer.create 16 in
    let rec go () =
      if !pos >= n then fail "unterminated string";
      let c = s.[!pos] in
      advance ();
      match c with
      | '"' -> Buffer.contents buf
      | '\\' -> (
          if !pos >= n then fail "unterminated escape";
          let e = s.[!pos] in
          advance ();
          match e with
          | '"' -> Buffer.add_char buf '"'; go ()
          | '\\' -> Buffer.add_char buf '\\'; go ()
          | '/' -> Buffer.add_char buf '/'; go ()
          | 'b' -> Buffer.add_char buf '\b'; go ()
          | 'f' -> Buffer.add_char buf '\012'; go ()
          | 'n' -> Buffer.add_char buf '\n'; go ()
          | 'r' -> Buffer.add_char buf '\r'; go ()
          | 't' -> Buffer.add_char buf '\t'; go ()
          | 'u' ->
              let u = hex4 () in
              let u =
                (* high surrogate: a low surrogate must follow *)
                if u >= 0xD800 && u <= 0xDBFF then begin
                  if
                    !pos + 1 < n && s.[!pos] = '\\' && s.[!pos + 1] = 'u'
                  then begin
                    advance ();
                    advance ();
                    let lo = hex4 () in
                    if lo < 0xDC00 || lo > 0xDFFF then
                      fail "unpaired surrogate"
                    else
                      0x10000 + ((u - 0xD800) lsl 10) + (lo - 0xDC00)
                  end
                  else fail "unpaired surrogate"
                end
                else if u >= 0xDC00 && u <= 0xDFFF then
                  fail "unpaired surrogate"
                else u
              in
              add_scalar buf u;
              go ()
          | c -> fail (Printf.sprintf "invalid escape '\\%c'" c))
      | c when Char.code c < 0x20 -> fail "raw control character in string"
      | c ->
          Buffer.add_char buf c;
          go ()
    in
    go ()
  in
  let parse_number () =
    let start = !pos in
    let digits () =
      let d0 = !pos in
      while !pos < n && match s.[!pos] with '0' .. '9' -> true | _ -> false do
        advance ()
      done;
      if !pos = d0 then fail "malformed number"
    in
    if peek () = Some '-' then advance ();
    (match peek () with
    | Some '0' -> advance ()
    | Some ('1' .. '9') -> digits ()
    | _ -> fail "malformed number");
    if peek () = Some '.' then begin
      advance ();
      digits ()
    end;
    (match peek () with
    | Some ('e' | 'E') ->
        advance ();
        (match peek () with Some ('+' | '-') -> advance () | _ -> ());
        digits ()
    | _ -> ());
    match float_of_string_opt (String.sub s start (!pos - start)) with
    | Some f -> Num f
    | None -> fail "malformed number"
  in
  let rec parse_value depth =
    if depth > 128 then fail "nesting too deep";
    skip_ws ();
    match peek () with
    | None -> fail "unexpected end of input"
    | Some '"' -> Str (parse_string ())
    | Some 't' -> literal "true" (Bool true)
    | Some 'f' -> literal "false" (Bool false)
    | Some 'n' -> literal "null" Null
    | Some '[' ->
        advance ();
        skip_ws ();
        if peek () = Some ']' then begin
          advance ();
          List []
        end
        else begin
          let items = ref [] in
          let rec elems () =
            items := parse_value (depth + 1) :: !items;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                elems ()
            | Some ']' -> advance ()
            | _ -> fail "expected ',' or ']' in array"
          in
          elems ();
          List (List.rev !items)
        end
    | Some '{' ->
        advance ();
        skip_ws ();
        if peek () = Some '}' then begin
          advance ();
          Obj []
        end
        else begin
          let fields = ref [] in
          let rec members () =
            skip_ws ();
            let k = parse_string () in
            skip_ws ();
            expect ':';
            let v = parse_value (depth + 1) in
            fields := (k, v) :: !fields;
            skip_ws ();
            match peek () with
            | Some ',' ->
                advance ();
                members ()
            | Some '}' -> advance ()
            | _ -> fail "expected ',' or '}' in object"
          in
          members ();
          Obj (List.rev !fields)
        end
    | Some ('-' | '0' .. '9') -> parse_number ()
    | Some c -> fail (Printf.sprintf "unexpected character '%c'" c)
  in
  match
    let v = parse_value 0 in
    skip_ws ();
    if !pos <> n then fail "trailing garbage after document";
    v
  with
  | v -> Ok v
  | exception Fail (p, msg) ->
      Error (Printf.sprintf "json: at offset %d: %s" p msg)

(* -- accessors ------------------------------------------------------------ *)

let member k = function Obj fields -> List.assoc_opt k fields | _ -> None
let to_string_opt = function Str s -> Some s | _ -> None
let to_float_opt = function Num f -> Some f | _ -> None

let to_int_opt = function
  | Num f when Float.is_integer f && Float.abs f <= 1e9 ->
      Some (int_of_float f)
  | _ -> None

let to_bool_opt = function Bool b -> Some b | _ -> None
