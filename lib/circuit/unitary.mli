(** Statevector and unitary simulation, used to *prove* that mapped
    circuits implement the original ones.

    Qubit 0 is the least significant bit of a basis index.  Sizes here are
    small (the QX4 experiments use at most 5 qubits ⇒ 32-dimensional
    spaces), so dense complex arrays are plenty. *)

type state = Complex.t array
type matrix = Complex.t array array

val basis : int -> int -> state
(** [basis n i] is |i⟩ over [n] qubits. *)

val random_state : Random.State.t -> int -> state
(** Haar-ish random normalized state (Gaussian components). *)

val apply_gate : int -> Gate.t -> state -> state
(** [apply_gate n g psi]: apply [g] to an [n]-qubit state. Barriers are
    identity. *)

val run : Circuit.t -> state -> state
(** Apply every gate in order. *)

val unitary : Circuit.t -> matrix
(** Full 2ⁿ×2ⁿ unitary of the circuit (column [i] = circuit applied to
    |i⟩). Use only for small [n]. *)

val permutation_matrix : int -> (int -> int) -> matrix
(** [permutation_matrix n sigma] is the unitary that moves the content of
    wire [q] to wire [sigma q], for a bijective [sigma] on [0, n). *)

val mat_mul : matrix -> matrix -> matrix
val mat_dagger : matrix -> matrix

val equal_up_to_phase : ?eps:float -> matrix -> matrix -> bool
val equal_strict : ?eps:float -> matrix -> matrix -> bool

val state_equal : ?eps:float -> state -> state -> bool

val states_equivalent_up_to_phase : ?eps:float -> state -> state -> bool

val distance : matrix -> matrix -> float
(** Max-entry distance, ignoring no phase (diagnostic aid). *)
