open Complex

type state = Complex.t array
type matrix = Complex.t array array

let dim n = 1 lsl n

let basis n i =
  let s = Array.make (dim n) zero in
  s.(i) <- one;
  s

let random_state rng n =
  let gaussian () =
    (* Box–Muller *)
    let u1 = Random.State.float rng 1.0 +. 1e-12 in
    let u2 = Random.State.float rng 1.0 in
    Stdlib.sqrt (-2.0 *. Stdlib.log u1) *. Stdlib.cos (2.0 *. Float.pi *. u2)
  in
  let s = Array.init (dim n) (fun _ -> { re = gaussian (); im = gaussian () }) in
  let nrm =
    Stdlib.sqrt (Array.fold_left (fun acc a -> acc +. norm2 a) 0.0 s)
  in
  Array.map (fun a -> div a { re = nrm; im = 0.0 }) s

let apply_single n m q (s : state) : state =
  let out = Array.copy s in
  let bit = 1 lsl q in
  for i = 0 to dim n - 1 do
    if i land bit = 0 then begin
      let j = i lor bit in
      let a = s.(i) and b = s.(j) in
      out.(i) <- add (mul m.(0).(0) a) (mul m.(0).(1) b);
      out.(j) <- add (mul m.(1).(0) a) (mul m.(1).(1) b)
    end
  done;
  out

let apply_gate n g (s : state) : state =
  match g with
  | Gate.Single (k, q) -> apply_single n (Gate.single_matrix k) q s
  | Gate.Cnot (c, t) ->
      let out = Array.copy s in
      let cb = 1 lsl c and tb = 1 lsl t in
      for i = 0 to dim n - 1 do
        if i land cb <> 0 && i land tb = 0 then begin
          let j = i lor tb in
          out.(i) <- s.(j);
          out.(j) <- s.(i)
        end
      done;
      out
  | Gate.Swap (a, b) ->
      let out = Array.copy s in
      let ab = 1 lsl a and bb = 1 lsl b in
      for i = 0 to dim n - 1 do
        if i land ab <> 0 && i land bb = 0 then begin
          let j = (i lxor ab) lor bb in
          out.(i) <- s.(j);
          out.(j) <- s.(i)
        end
      done;
      out
  | Gate.Barrier _ -> s

let run circuit s =
  let n = Circuit.num_qubits circuit in
  if Array.length s <> dim n then invalid_arg "Unitary.run: dimension";
  List.fold_left (fun s g -> apply_gate n g s) s (Circuit.gates circuit)

let unitary circuit =
  let n = Circuit.num_qubits circuit in
  let d = dim n in
  let cols = Array.init d (fun i -> run circuit (basis n i)) in
  (* store row-major: u.(r).(c) *)
  Array.init d (fun r -> Array.init d (fun c -> cols.(c).(r)))

let permutation_matrix n sigma =
  let d = dim n in
  (* basis |x> maps to |y> with bit (sigma q) of y = bit q of x *)
  let image x =
    let y = ref 0 in
    for q = 0 to n - 1 do
      if x land (1 lsl q) <> 0 then y := !y lor (1 lsl (sigma q))
    done;
    !y
  in
  let m = Array.make_matrix d d zero in
  for x = 0 to d - 1 do
    m.(image x).(x) <- one
  done;
  m

let mat_mul a b =
  let d = Array.length a in
  let out = Array.make_matrix d d zero in
  for i = 0 to d - 1 do
    for k = 0 to d - 1 do
      let aik = a.(i).(k) in
      if aik.re <> 0.0 || aik.im <> 0.0 then
        for j = 0 to d - 1 do
          out.(i).(j) <- add out.(i).(j) (mul aik b.(k).(j))
        done
    done
  done;
  out

let mat_dagger a =
  let d = Array.length a in
  Array.init d (fun i -> Array.init d (fun j -> conj a.(j).(i)))

let max_entry_diff a b =
  let d = Array.length a in
  let m = ref 0.0 in
  for i = 0 to d - 1 do
    for j = 0 to d - 1 do
      m := Float.max !m (norm (sub a.(i).(j) b.(i).(j)))
    done
  done;
  !m

let equal_strict ?(eps = 1e-9) a b = max_entry_diff a b <= eps

let first_significant a =
  let d = Array.length a in
  let found = ref None in
  (try
     for i = 0 to d - 1 do
       for j = 0 to d - 1 do
         if norm a.(i).(j) > 1e-6 then begin
           found := Some (i, j);
           raise Exit
         end
       done
     done
   with Exit -> ());
  !found

let equal_up_to_phase ?(eps = 1e-9) a b =
  match first_significant a with
  | None -> max_entry_diff a b <= eps
  | Some (i, j) ->
      if norm b.(i).(j) <= 1e-9 then false
      else begin
        let phase = div a.(i).(j) b.(i).(j) in
        let mag = norm phase in
        if Float.abs (mag -. 1.0) > 1e-6 then false
        else begin
          let d = Array.length b in
          let b' =
            Array.init d (fun r -> Array.map (fun x -> mul phase x) b.(r))
          in
          max_entry_diff a b' <= eps
        end
      end

let state_equal ?(eps = 1e-9) s1 s2 =
  Array.length s1 = Array.length s2
  && begin
       let m = ref 0.0 in
       Array.iteri (fun i a -> m := Float.max !m (norm (sub a s2.(i)))) s1;
       !m <= eps
     end

let states_equivalent_up_to_phase ?(eps = 1e-9) s1 s2 =
  Array.length s1 = Array.length s2
  &&
  let idx = ref None in
  Array.iteri
    (fun i a -> if !idx = None && norm a > 1e-6 then idx := Some i)
    s1;
  match !idx with
  | None -> state_equal ~eps s1 s2
  | Some i ->
      if norm s2.(i) <= 1e-9 then false
      else
        let phase = div s1.(i) s2.(i) in
        if Float.abs (norm phase -. 1.0) > 1e-6 then false
        else state_equal ~eps s1 (Array.map (mul phase) s2)

let distance = max_entry_diff
