(** Quantum circuits: a number of qubits and an ordered gate list (Def. 1).

    Circuits are immutable; builders return new values.  Gate indices used
    throughout the mapper are 1-based positions in {!cnots} (the paper
    indexes CNOT gates g₁…g₍|G|₎ after dropping single-qubit gates,
    cf. Fig. 1b). *)

type t

val create : int -> Gate.t list -> t
(** [create n gates]. @raise Invalid_argument if a gate touches a qubit
    outside [0, n). *)

val empty : int -> t
val num_qubits : t -> int
val gates : t -> Gate.t list
val length : t -> int
(** Number of gates (barriers included). *)

val append : t -> Gate.t -> t
val concat : t -> t -> t
(** Circuits must agree on qubit count. @raise Invalid_argument. *)

val equal : t -> t -> bool

(* Convenience builders *)
val add_single : t -> Gate.single_kind -> int -> t
val add_cnot : t -> control:int -> target:int -> t
val add_swap : t -> int -> int -> t

(* Views *)
val cnots : t -> (int * int) list
(** Control/target pairs of the CNOT gates, in order — the circuit
    "without single qubit gates" of Fig. 1b. *)

val without_singles : t -> t
val used_qubits : t -> int list
(** Ascending list of qubits touched by at least one gate. *)

val map_qubits : (int -> int) -> int -> t -> t
(** [map_qubits f n c] relabels qubits with [f] into a fresh [n]-qubit
    circuit. *)

(* Statistics *)
val count_singles : t -> int
val count_cnots : t -> int
val count_swaps : t -> int

val original_cost : t -> int
(** Single-qubit gates plus CNOTs — the "original cost" column of
    Table 1. @raise Invalid_argument if the circuit still contains SWAP
    gates (decompose first). *)

val interacting_pairs : t -> (int * int) list
(** Distinct unordered qubit pairs that share at least one CNOT. *)

val pp : Format.formatter -> t -> unit
(** One gate per line; for diagrams use {!Draw}. *)
