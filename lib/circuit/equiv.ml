let check ?(max_qubits = 10) ~allowed ~original ~mapped ~init_full
    ~final_full () =
  let m = Circuit.num_qubits mapped in
  if m > max_qubits then None
  else begin
    let extended =
      Circuit.create m (Circuit.gates original)
    in
    let elementary = Decompose.elementary ~allowed mapped in
    let u_mapped = Unitary.unitary elementary in
    let u_orig = Unitary.unitary extended in
    let p_init = Unitary.permutation_matrix m (fun w -> init_full.(w)) in
    let p_final = Unitary.permutation_matrix m (fun w -> final_full.(w)) in
    let expected =
      Unitary.mat_mul p_final
        (Unitary.mat_mul u_orig (Unitary.mat_dagger p_init))
    in
    Some (Unitary.equal_strict ~eps:1e-7 u_mapped expected)
  end
