let eps = 1e-12

type action = Cancel | Replace of Gate.t | Keep

let norm_angle a =
  (* reduce mod 2π into (-π, π] to recognize full turns *)
  let two_pi = 2.0 *. Float.pi in
  let a = Float.rem a two_pi in
  if a > Float.pi then a -. two_pi
  else if a <= -.Float.pi then a +. two_pi
  else a

let fuse_rotation make a b q =
  let total = norm_angle (a +. b) in
  if Float.abs total < eps then Cancel else Replace (Gate.Single (make total, q))

(* What happens when [g2] immediately follows [g1] on the same qubits? *)
let combine g1 g2 =
  match (g1, g2) with
  | Gate.Single (k1, q1), Gate.Single (k2, q2) when q1 = q2 -> (
      match (k1, k2) with
      | Gate.H, Gate.H
      | Gate.X, Gate.X
      | Gate.Y, Gate.Y
      | Gate.Z, Gate.Z
      | Gate.S, Gate.Sdg
      | Gate.Sdg, Gate.S
      | Gate.T, Gate.Tdg
      | Gate.Tdg, Gate.T ->
          Cancel
      | Gate.T, Gate.T -> Replace (Gate.Single (Gate.S, q1))
      | Gate.Tdg, Gate.Tdg -> Replace (Gate.Single (Gate.Sdg, q1))
      | Gate.S, Gate.S | Gate.Sdg, Gate.Sdg ->
          Replace (Gate.Single (Gate.Z, q1))
      | Gate.Rz a, Gate.Rz b -> fuse_rotation (fun t -> Gate.Rz t) a b q1
      | Gate.Rx a, Gate.Rx b -> fuse_rotation (fun t -> Gate.Rx t) a b q1
      | Gate.Ry a, Gate.Ry b -> fuse_rotation (fun t -> Gate.Ry t) a b q1
      | Gate.U (0.0, 0.0, a), Gate.U (0.0, 0.0, b) ->
          fuse_rotation (fun t -> Gate.U (0.0, 0.0, t)) a b q1
      | _ -> Keep)
  | Gate.Cnot (c1, t1), Gate.Cnot (c2, t2) when c1 = c2 && t1 = t2 -> Cancel
  | Gate.Swap (a1, b1), Gate.Swap (a2, b2)
    when (a1, b1) = (a2, b2) || (a1, b1) = (b2, a2) ->
      Cancel
  | _ -> Keep

let is_identity = function
  | Gate.Single (Gate.I, _) -> true
  | Gate.Single ((Gate.Rx a | Gate.Ry a | Gate.Rz a), _) ->
      Float.abs (norm_angle a) < eps
  | Gate.Single (Gate.U (t, p, l), _) ->
      Float.abs (norm_angle t) < eps
      && Float.abs (norm_angle (p +. l)) < eps
  | _ -> false

let overlaps g1 g2 =
  (* barriers act as full-width fences *)
  match (g1, g2) with
  | Gate.Barrier _, _ | _, Gate.Barrier _ -> true
  | _ ->
      List.exists (fun q -> List.mem q (Gate.qubits g2)) (Gate.qubits g1)

(* For gate [g], find the next gate in [rest] touching any of its qubits
   and try to combine; gates on disjoint qubits are skipped over (they
   commute, so reordering across them is exact). *)
let rec try_combine g rest =
  match rest with
  | [] -> None
  | g' :: tail when not (overlaps g g') -> (
      match try_combine g tail with
      | Some (`Drop tail') -> Some (`Drop (g' :: tail'))
      | Some (`Merge (m, tail')) -> Some (`Merge (m, g' :: tail'))
      | None -> None)
  | g' :: tail -> (
      match combine g g' with
      | Cancel -> Some (`Drop tail)
      | Replace merged -> Some (`Merge (merged, tail))
      | Keep -> None)

let pass circuit =
  let rec go acc = function
    | [] -> List.rev acc
    | g :: rest when is_identity g -> go acc rest
    | g :: rest -> (
        match try_combine g rest with
        | Some (`Drop rest') -> go acc rest'
        | Some (`Merge (merged, rest')) -> go acc (merged :: rest')
        | None -> go (g :: acc) rest)
  in
  Circuit.create (Circuit.num_qubits circuit) (go [] (Circuit.gates circuit))

let optimize ?(max_rounds = 50) circuit =
  let rec fix round c =
    if round >= max_rounds then c
    else
      let c' = pass c in
      if Circuit.equal c c' then c else fix (round + 1) c'
  in
  fix 0 circuit

let gates_saved ~before ~after = Circuit.length before - Circuit.length after
