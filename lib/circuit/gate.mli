(** Quantum gates (Def. 1 of the paper).

    A gate is either a single-qubit operation — the IBM QX architectures
    natively provide the universal U(θ,φ,λ) rotation, of which the named
    gates are special cases — or a CNOT.  SWAP is kept as a first-class
    gate so mapped circuits can be inspected before decomposition; the
    mapping cost model always counts it as 7 elementary operations
    (Fig. 3). *)

type single_kind =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U of float * float * float  (** θ, φ, λ: Rz(φ)·Ry(θ)·Rz(λ) *)

type t =
  | Single of single_kind * int  (** kind, target qubit *)
  | Cnot of int * int  (** control, target *)
  | Swap of int * int
  | Barrier of int list
      (** No-op separator; kept for QASM round-trips, ignored by costs. *)

val single_kind_name : single_kind -> string
(** Lower-case OpenQASM-style mnemonic, e.g. ["tdg"], ["u3"]. *)

val qubits : t -> int list
(** Qubits the gate touches, in declaration order. *)

val max_qubit : t -> int
(** Largest qubit index used, [-1] for an empty barrier. *)

val is_cnot : t -> bool
val is_single : t -> bool

val map_qubits : (int -> int) -> t -> t
(** Relabel qubit indices. @raise Invalid_argument if a CNOT or SWAP would
    end up with identical operands. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit

val single_matrix : single_kind -> Complex.t array array
(** 2×2 unitary of a single-qubit gate. *)

val u_params : single_kind -> float * float * float
(** (θ, φ, λ) such that U(θ,φ,λ) equals the gate up to global phase —
    what the QASM emitter uses for hardware-native output. *)
