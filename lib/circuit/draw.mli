(** ASCII circuit diagrams in the style of the paper's figures.

    Qubits are horizontal lines (top to bottom), gates advance left to
    right; gates on disjoint qubits share a column.  Single-qubit gates
    render as [[H]], CNOT controls as [*], targets as [(+)], SWaps as
    [x--x]. *)

val render : ?labels:string array -> Circuit.t -> string
(** Multi-line diagram.  [labels] overrides the per-qubit line labels
    (default ["q0:"], ["q1:"], …); useful for showing physical qubits with
    their mapped logical qubit, as in Fig. 5. *)

val print : ?labels:string array -> Circuit.t -> unit
(** [render] to stdout. *)
