let swap_cost = 7
let direction_cost = 4

let cnot_respecting ~allowed ~control ~target =
  if allowed control target then [ Gate.Cnot (control, target) ]
  else if allowed target control then
    [
      Gate.Single (Gate.H, control);
      Gate.Single (Gate.H, target);
      Gate.Cnot (target, control);
      Gate.Single (Gate.H, control);
      Gate.Single (Gate.H, target);
    ]
  else
    invalid_arg
      (Printf.sprintf "Decompose: qubits %d and %d are not coupled" control
         target)

let swap_gates ~allowed a b =
  (* SWAP(a,b) = CX(l,f) · CX(f,l) · CX(l,f).  Leading with the native
     direction leaves at most the middle CNOT flipped, which is Fig. 3's
     7-gate realization on a one-directional edge (leading with the wrong
     direction would flip both outer CNOTs and cost 11). *)
  let lead, follow = if allowed a b then (a, b) else (b, a) in
  cnot_respecting ~allowed ~control:lead ~target:follow
  @ cnot_respecting ~allowed ~control:follow ~target:lead
  @ cnot_respecting ~allowed ~control:lead ~target:follow

let elementary ~allowed circuit =
  let gates =
    List.concat_map
      (function
        | Gate.Cnot (c, t) -> cnot_respecting ~allowed ~control:c ~target:t
        | Gate.Swap (a, b) -> swap_gates ~allowed a b
        | g -> [ g ])
      (Circuit.gates circuit)
  in
  Circuit.create (Circuit.num_qubits circuit) gates

let added_cost ~original ~mapped =
  let cost c =
    List.fold_left
      (fun acc g ->
        match g with
        | Gate.Single _ -> acc + 1
        | Gate.Cnot _ -> acc + 1
        | Gate.Swap _ -> acc + swap_cost
        | Gate.Barrier _ -> acc)
      0 (Circuit.gates c)
  in
  cost mapped - cost original
