(* Slot assignment: each gate goes into the earliest column after the last
   column used by any qubit in its span (inclusive: CNOT connectors occupy
   the intermediate lines too). *)

let gate_span g =
  match Gate.qubits g with
  | [] -> None
  | qs -> Some (List.fold_left min max_int qs, List.fold_left max (-1) qs)

let assign_slots circuit =
  let n = Circuit.num_qubits circuit in
  let busy_until = Array.make (max n 1) (-1) in
  List.map
    (fun g ->
      match gate_span g with
      | None -> (g, 0)
      | Some (lo, hi) ->
          let slot = ref (-1) in
          for q = lo to hi do
            slot := max !slot busy_until.(q)
          done;
          let slot = !slot + 1 in
          for q = lo to hi do
            busy_until.(q) <- slot
          done;
          (g, slot))
    (Circuit.gates circuit)

let label_of_kind k =
  match k with
  | Gate.Rx _ | Gate.Ry _ | Gate.Rz _ | Gate.U _ ->
      "[" ^ String.uppercase_ascii (Gate.single_kind_name k) ^ "]"
  | _ -> "[" ^ String.uppercase_ascii (Gate.single_kind_name k) ^ "]"

let render ?labels circuit =
  let n = Circuit.num_qubits circuit in
  let slotted = assign_slots circuit in
  let nslots =
    List.fold_left (fun acc (_, s) -> max acc (s + 1)) 0 slotted
  in
  (* cell width per slot *)
  let widths = Array.make (max nslots 1) 3 in
  let cell_text g q =
    match g with
    | Gate.Single (k, t) when t = q -> Some (label_of_kind k)
    | Gate.Cnot (c, _) when c = q -> Some "*"
    | Gate.Cnot (_, t) when t = q -> Some "(+)"
    | Gate.Swap (a, b) when a = q || b = q -> Some "x"
    | Gate.Barrier qs when List.mem q qs -> Some "|"
    | _ -> None
  in
  List.iter
    (fun (g, s) ->
      List.iter
        (fun q ->
          match cell_text g q with
          | Some txt -> widths.(s) <- max widths.(s) (String.length txt)
          | None -> ())
        (Gate.qubits g))
    slotted;
  let labels =
    match labels with
    | Some l ->
        if Array.length l <> n then invalid_arg "Draw.render: labels length";
        l
    | None -> Array.init n (fun q -> Printf.sprintf "q%d:" q)
  in
  let label_w =
    Array.fold_left (fun acc l -> max acc (String.length l)) 0 labels
  in
  let buf = Buffer.create 1024 in
  for q = 0 to n - 1 do
    Buffer.add_string buf labels.(q);
    Buffer.add_string buf (String.make (label_w - String.length labels.(q)) ' ');
    Buffer.add_string buf " -";
    for s = 0 to nslots - 1 do
      let w = widths.(s) in
      let here =
        List.find_opt (fun (g, s') -> s' = s && List.mem q (Gate.qubits g))
          slotted
      in
      let connector =
        List.exists
          (fun (g, s') ->
            s' = s
            &&
            match gate_span g with
            | Some (lo, hi) ->
                (match g with
                | Gate.Cnot _ | Gate.Swap _ -> lo < q && q < hi
                | _ -> false)
            | None -> false)
          slotted
      in
      let txt =
        match here with
        | Some (g, _) -> (
            match cell_text g q with Some t -> t | None -> "-")
        | None -> if connector then "|" else "-"
      in
      (* center the cell text in the slot; connector cells break the wire *)
      let pad_total = w - String.length txt in
      let pad_l = pad_total / 2 and pad_r = pad_total - (pad_total / 2) in
      let fill = if txt = "|" then ' ' else '-' in
      Buffer.add_string buf (String.make pad_l fill);
      Buffer.add_string buf txt;
      Buffer.add_string buf (String.make pad_r fill);
      Buffer.add_string buf "-"
    done;
    Buffer.add_char buf '\n'
  done;
  Buffer.contents buf

let print ?labels circuit = print_string (render ?labels circuit)
