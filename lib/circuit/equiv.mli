(** Equivalence proof for mapped circuits.

    A mapped circuit is correct iff, as an operator on the device's
    physical qubits, it equals  P_final · (U_original ⊗ I) · P_init†,
    where P_σ places wire [w] on physical qubit [σ(w)] and the identity
    acts on the idle extra wires.  All constructions used by the mappers
    (3-CNOT SWaps, 4-H direction flips) are phase-exact, so the comparison
    is strict. *)

val check :
  ?max_qubits:int ->
  allowed:(int -> int -> bool) ->
  original:Circuit.t ->
  mapped:Circuit.t ->
  init_full:int array ->
  final_full:int array ->
  unit ->
  bool option
(** [mapped] may still contain SWAP gates; it is decomposed against
    [allowed] first.  [init_full]/[final_full] give wire → physical for
    every wire of the device (idle extras included).  Returns [None] when
    the device exceeds [max_qubits] (default 10) and simulation would be
    unreasonable. *)
