(** Peephole circuit optimization.

    The paper deliberately excludes pre-/post-mapping gate optimization
    from its exact formulation (footnote 2, citing [12, 23]); this module
    provides that surrounding pass as an optional extension: cancellation
    of adjacent self-inverse pairs (H·H, X·X, CX·CX, SWAP·SWAP, T·T†, …),
    fusion of adjacent rotations about the same axis, and phase-gate
    strength reduction (T·T → S, S·S → Z).  "Adjacent" ignores gates on
    disjoint qubits, which always commute; no stronger commutation rules
    are used, so every rewrite preserves the unitary exactly (the test
    suite proves it by simulation). *)

val optimize : ?max_rounds:int -> Circuit.t -> Circuit.t
(** Run cancellation/fusion to a fixpoint (at most [max_rounds] passes,
    default 50).  Barriers block optimization across them. *)

val pass : Circuit.t -> Circuit.t
(** A single pass. *)

val gates_saved : before:Circuit.t -> after:Circuit.t -> int
