(** OpenQASM 2.0 reader and writer.

    Supports the practical subset produced and consumed by the mapping
    flow: [OPENQASM 2.0], [include] (ignored), any number of [qreg]s
    (flattened into one contiguous index space in declaration order),
    [creg]/[measure]/[barrier], the qelib1 single-qubit gates
    (id x y z h s sdg t tdg rx ry rz u1 u2 u3 u), [cx], and [swap].
    Parameter expressions allow numbers, [pi], [+ - * / ^], parentheses and
    unary minus. *)

exception Parse_error of { line : int; message : string }

val parse_string : string -> Circuit.t
(** @raise Parse_error on malformed input. *)

val parse_file : string -> Circuit.t

(** {1 Annotated parsing}

    Statement-level view with source lines, consumed by the lint layer.
    The plain entry points above are thin wrappers that drop the
    annotations. *)

type stmt =
  | Gate_stmt of Gate.t * int  (** gate and the line it was parsed on *)
  | Measure_stmt of int * int
      (** measured (flattened) qubit index and source line *)

type annotated = { circuit : Circuit.t; stmts : stmt list }

val parse_annotated : string -> annotated
(** Like {!parse_string}, additionally retaining per-statement source
    lines and measurements. @raise Parse_error on malformed input. *)

val parse_file_annotated : string -> annotated

val to_string : ?creg:bool -> Circuit.t -> string
(** Emit OpenQASM 2.0.  Named gates are emitted with their qelib1 names;
    [U] gates as [u3].  [creg] additionally declares a classical register
    and measures every qubit at the end (default false). *)

val write_file : ?creg:bool -> string -> Circuit.t -> unit
