(** Decompositions used by the mapping step (Fig. 3 of the paper).

    A SWAP on a coupled pair costs 7 elementary operations (3 CNOTs, one of
    which must be direction-flipped with 4 Hadamards on a one-directional
    edge); executing a CNOT against the edge direction costs 4 extra
    Hadamards. *)

val swap_cost : int
(** 7 — elementary operations per inserted SWAP. *)

val direction_cost : int
(** 4 — Hadamard operations per direction-switched CNOT. *)

val cnot_respecting :
  allowed:(int -> int -> bool) -> control:int -> target:int -> Gate.t list
(** Emit a CNOT with the given logical control/target using only coupling
    directions permitted by [allowed ctrl tgt]; flips with 4 H when only
    the reverse direction exists.
    @raise Invalid_argument if the qubits are not coupled either way. *)

val swap_gates : allowed:(int -> int -> bool) -> int -> int -> Gate.t list
(** The 3-CNOT realization of SWAP, orienting each CNOT to the coupling.
    On a one-directional edge this yields exactly 7 gates. *)

val elementary : allowed:(int -> int -> bool) -> Circuit.t -> Circuit.t
(** Replace every SWAP by {!swap_gates} and wrap every direction-violating
    CNOT per {!cnot_respecting}; single-qubit gates pass through.  The
    result uses only coupling-compliant CNOTs and single-qubit gates. *)

val added_cost : original:Circuit.t -> mapped:Circuit.t -> int
(** Elementary-gate overhead of a mapped circuit over the original: the
    paper's F (Eq. 5) evaluated on concrete circuits. SWAPs in [mapped]
    count as {!swap_cost}. *)
