(** Gate-dependency DAG of a circuit.

    Two gates depend on each other iff they share a qubit (barriers fence
    everything).  The DAG yields the circuit depth, as-soon-as-possible
    layering — the parallel view heuristic mappers reason about — and the
    front-layer iteration SABRE-style routers need. *)

type t

val of_circuit : Circuit.t -> t

val num_gates : t -> int

val gate : t -> int -> Gate.t

val predecessors : t -> int -> int list
(** Direct predecessors of gate [i] (indices into the original order). *)

val successors : t -> int -> int list

val asap_layer : t -> int -> int
(** 0-based earliest layer of a gate. *)

val depth : t -> int
(** Number of ASAP layers (0 for an empty circuit). *)

val cnot_depth : t -> int
(** Depth counting only CNOT gates — the interaction depth that dominates
    mapping difficulty. *)

val layers : t -> int list list
(** Gate indices grouped by ASAP layer, ascending. *)

val roots : t -> int list
(** Gates with no predecessor — the initial front layer. *)
