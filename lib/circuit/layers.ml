module IntSet = Set.Make (Int)

let of_pairs pairs =
  let rec go layer used acc = function
    | [] -> List.rev acc
    | (c, t) :: rest ->
        if IntSet.mem c used || IntSet.mem t used then
          go (layer + 1) (IntSet.of_list [ c; t ]) ((layer + 1) :: acc) rest
        else
          go layer
            (IntSet.add c (IntSet.add t used))
            (layer :: acc) rest
  in
  go 0 IntSet.empty [] pairs

let of_circuit c = of_pairs (Circuit.cnots c)

let starts layers =
  let rec go pos prev acc = function
    | [] -> List.rev acc
    | l :: rest ->
        let acc = if pos > 0 && l <> prev then pos :: acc else acc in
        go (pos + 1) l acc rest
  in
  go 0 (-1) [] layers

let count layers =
  match layers with [] -> 0 | _ -> List.fold_left max 0 layers + 1

let bounded_qubit_runs ~k pairs =
  if k < 2 then invalid_arg "Layers.bounded_qubit_runs: k < 2";
  let rec go run used acc = function
    | [] -> List.rev acc
    | (c, t) :: rest ->
        let extended = IntSet.add c (IntSet.add t used) in
        if IntSet.cardinal extended <= k then
          go run extended (run :: acc) rest
        else
          go (run + 1) (IntSet.of_list [ c; t ]) ((run + 1) :: acc) rest
  in
  go 0 IntSet.empty [] pairs

let run_starts_bounded ~k pairs = starts (bounded_qubit_runs ~k pairs)
