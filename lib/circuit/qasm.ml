exception Parse_error of { line : int; message : string }

let fail line fmt =
  Format.kasprintf (fun message -> raise (Parse_error { line; message })) fmt

(* ------------------------------------------------------------------ *)
(* Lexer                                                               *)
(* ------------------------------------------------------------------ *)

type token =
  | Ident of string
  | Number of float
  | Str of string
  | Punct of char (* ; , ( ) [ ] { } *)
  | Op of char (* + - * / ^ *)
  | Arrow (* -> *)
  | Eof

type lexer = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable tok : token;
  mutable tok_line : int;
}

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let rec skip_ws lx =
  if lx.pos < String.length lx.src then begin
    match lx.src.[lx.pos] with
    | ' ' | '\t' | '\r' ->
        lx.pos <- lx.pos + 1;
        skip_ws lx
    | '\n' ->
        lx.pos <- lx.pos + 1;
        lx.line <- lx.line + 1;
        skip_ws lx
    | '/'
      when lx.pos + 1 < String.length lx.src && lx.src.[lx.pos + 1] = '/' ->
        while lx.pos < String.length lx.src && lx.src.[lx.pos] <> '\n' do
          lx.pos <- lx.pos + 1
        done;
        skip_ws lx
    | _ -> ()
  end

let lex_token lx =
  skip_ws lx;
  lx.tok_line <- lx.line;
  if lx.pos >= String.length lx.src then lx.tok <- Eof
  else begin
    let c = lx.src.[lx.pos] in
    if is_ident_start c then begin
      let start = lx.pos in
      while lx.pos < String.length lx.src && is_ident lx.src.[lx.pos] do
        lx.pos <- lx.pos + 1
      done;
      lx.tok <- Ident (String.sub lx.src start (lx.pos - start))
    end
    else if is_digit c || (c = '.' && lx.pos + 1 < String.length lx.src
                           && is_digit lx.src.[lx.pos + 1]) then begin
      let start = lx.pos in
      let seen_e = ref false in
      let continue = ref true in
      while !continue && lx.pos < String.length lx.src do
        let c = lx.src.[lx.pos] in
        if is_digit c || c = '.' then lx.pos <- lx.pos + 1
        else if (c = 'e' || c = 'E') && not !seen_e then begin
          seen_e := true;
          lx.pos <- lx.pos + 1;
          if
            lx.pos < String.length lx.src
            && (lx.src.[lx.pos] = '+' || lx.src.[lx.pos] = '-')
          then lx.pos <- lx.pos + 1
        end
        else continue := false
      done;
      let text = String.sub lx.src start (lx.pos - start) in
      match float_of_string_opt text with
      | Some f -> lx.tok <- Number f
      | None -> fail lx.line "bad number %S" text
    end
    else if c = '"' then begin
      let start = lx.pos + 1 in
      let e = ref start in
      while !e < String.length lx.src && lx.src.[!e] <> '"' do
        incr e
      done;
      if !e >= String.length lx.src then fail lx.line "unterminated string";
      lx.tok <- Str (String.sub lx.src start (!e - start));
      lx.pos <- !e + 1
    end
    else if c = '-' && lx.pos + 1 < String.length lx.src
            && lx.src.[lx.pos + 1] = '>' then begin
      lx.pos <- lx.pos + 2;
      lx.tok <- Arrow
    end
    else begin
      lx.pos <- lx.pos + 1;
      match c with
      | ';' | ',' | '(' | ')' | '[' | ']' | '{' | '}' -> lx.tok <- Punct c
      | '+' | '-' | '*' | '/' | '^' -> lx.tok <- Op c
      | '=' when lx.pos < String.length lx.src && lx.src.[lx.pos] = '=' ->
          lx.pos <- lx.pos + 1;
          lx.tok <- Op '='
      | _ -> fail lx.line "unexpected character %C" c
    end
  end

let make_lexer src =
  let lx = { src; pos = 0; line = 1; tok = Eof; tok_line = 1 } in
  lex_token lx;
  lx

let advance = lex_token

let expect_punct lx c =
  match lx.tok with
  | Punct c' when c = c' -> advance lx
  | _ -> fail lx.tok_line "expected %C" c

let expect_ident lx =
  match lx.tok with
  | Ident s ->
      advance lx;
      s
  | _ -> fail lx.tok_line "expected identifier"

(* ------------------------------------------------------------------ *)
(* Parameter expressions                                               *)
(* ------------------------------------------------------------------ *)

let rec parse_expr lx = parse_add lx

and parse_add lx =
  let lhs = ref (parse_mul lx) in
  let continue = ref true in
  while !continue do
    match lx.tok with
    | Op '+' ->
        advance lx;
        lhs := !lhs +. parse_mul lx
    | Op '-' ->
        advance lx;
        lhs := !lhs -. parse_mul lx
    | _ -> continue := false
  done;
  !lhs

and parse_mul lx =
  let lhs = ref (parse_pow lx) in
  let continue = ref true in
  while !continue do
    match lx.tok with
    | Op '*' ->
        advance lx;
        lhs := !lhs *. parse_pow lx
    | Op '/' ->
        advance lx;
        lhs := !lhs /. parse_pow lx
    | _ -> continue := false
  done;
  !lhs

and parse_pow lx =
  let base = parse_atom lx in
  match lx.tok with
  | Op '^' ->
      advance lx;
      Float.pow base (parse_pow lx)
  | _ -> base

and parse_atom lx =
  match lx.tok with
  | Number f ->
      advance lx;
      f
  | Ident "pi" ->
      advance lx;
      Float.pi
  | Ident ("sin" | "cos" | "tan" | "exp" | "ln" | "sqrt" as fn) ->
      advance lx;
      expect_punct lx '(';
      let v = parse_expr lx in
      expect_punct lx ')';
      (match fn with
      | "sin" -> sin v
      | "cos" -> cos v
      | "tan" -> tan v
      | "exp" -> exp v
      | "ln" -> log v
      | _ -> sqrt v)
  | Op '-' ->
      advance lx;
      -.parse_atom lx
  | Op '+' ->
      advance lx;
      parse_atom lx
  | Punct '(' ->
      advance lx;
      let v = parse_expr lx in
      expect_punct lx ')';
      v
  | _ -> fail lx.tok_line "expected parameter expression"

(* ------------------------------------------------------------------ *)
(* Program parser                                                      *)
(* ------------------------------------------------------------------ *)

type reg = { offset : int; size : int }

(* Statements with their source line, preserved for the lint layer; the
   plain mapping flow only ever looks at the gates. *)
type stmt =
  | Gate_stmt of Gate.t * int
  | Measure_stmt of int * int

type annotated = { circuit : Circuit.t; stmts : stmt list }

type env = {
  mutable qregs : (string * reg) list;
  mutable total : int;
  mutable rev_stmts : stmt list;
}

(* A qubit argument [name[idx]] resolved to flat indices; a bare register
   name denotes the whole register (QASM broadcasting). *)
let parse_qarg lx env =
  let name = expect_ident lx in
  match List.assoc_opt name env.qregs with
  | None -> fail lx.tok_line "unknown quantum register %s" name
  | Some reg -> (
      match lx.tok with
      | Punct '[' ->
          advance lx;
          let idx =
            match lx.tok with
            | Number f when Float.is_integer f && Float.abs f <= 1e9 ->
                advance lx;
                int_of_float f
            | Number f when Float.is_integer f ->
                fail lx.tok_line "index %.0f out of range for %s[%d]" f name
                  reg.size
            | _ -> fail lx.tok_line "expected qubit index"
          in
          expect_punct lx ']';
          if idx < 0 || idx >= reg.size then
            fail lx.tok_line "index %d out of range for %s[%d]" idx name
              reg.size;
          [ reg.offset + idx ]
      | _ -> List.init reg.size (fun i -> reg.offset + i))

let parse_params lx =
  match lx.tok with
  | Punct '(' ->
      advance lx;
      let rec go acc =
        let v = parse_expr lx in
        match lx.tok with
        | Punct ',' ->
            advance lx;
            go (v :: acc)
        | Punct ')' ->
            advance lx;
            List.rev (v :: acc)
        | _ -> fail lx.tok_line "expected , or ) in parameter list"
      in
      go []
  | _ -> []

let single_of_name line name params =
  match (name, params) with
  | "id", [] -> Gate.I
  | "x", [] -> Gate.X
  | "y", [] -> Gate.Y
  | "z", [] -> Gate.Z
  | "h", [] -> Gate.H
  | "s", [] -> Gate.S
  | "sdg", [] -> Gate.Sdg
  | "t", [] -> Gate.T
  | "tdg", [] -> Gate.Tdg
  | "rx", [ a ] -> Gate.Rx a
  | "ry", [ a ] -> Gate.Ry a
  | "rz", [ a ] -> Gate.Rz a
  | "u1", [ l ] -> Gate.U (0.0, 0.0, l)
  | "u2", [ p; l ] -> Gate.U (Float.pi /. 2.0, p, l)
  | ("u3" | "u" | "U"), [ t; p; l ] -> Gate.U (t, p, l)
  | _ ->
      fail line "gate %s with %d parameter(s) is not supported" name
        (List.length params)

let emit env line g = env.rev_stmts <- Gate_stmt (g, line) :: env.rev_stmts

let rec zip_broadcast line f args =
  (* QASM broadcasting: all multi-qubit args must have equal length. *)
  match args with
  | [] -> ()
  | _ ->
      let lens = List.map List.length args in
      let n = List.fold_left max 1 lens in
      List.iter
        (fun l -> if l <> 1 && l <> n then fail line "register size mismatch")
        lens;
      for i = 0 to n - 1 do
        let pick arg = match arg with [ q ] -> q | qs -> List.nth qs i in
        f (List.map pick args)
      done

and parse_statement lx env =
  match lx.tok with
  | Eof -> false
  | Ident "OPENQASM" ->
      advance lx;
      (match lx.tok with
      | Number _ -> advance lx
      | _ -> fail lx.tok_line "expected version number");
      expect_punct lx ';';
      true
  | Ident "include" ->
      advance lx;
      (match lx.tok with
      | Str _ -> advance lx
      | _ -> fail lx.tok_line "expected file name");
      expect_punct lx ';';
      true
  | Ident "qreg" ->
      advance lx;
      let name = expect_ident lx in
      expect_punct lx '[';
      let size =
        match lx.tok with
        | Number f when Float.is_integer f && f > 0.0 ->
            advance lx;
            (* cap keeps a corrupted header from driving allocation *)
            if f > 1e6 then
              fail lx.tok_line "register size %.0f is unreasonably large" f;
            int_of_float f
        | _ -> fail lx.tok_line "expected register size"
      in
      expect_punct lx ']';
      expect_punct lx ';';
      if List.mem_assoc name env.qregs then
        fail lx.tok_line "duplicate register %s" name;
      env.qregs <- env.qregs @ [ (name, { offset = env.total; size }) ];
      env.total <- env.total + size;
      true
  | Ident "creg" ->
      advance lx;
      let _ = expect_ident lx in
      expect_punct lx '[';
      (match lx.tok with Number _ -> advance lx | _ -> fail lx.tok_line "size");
      expect_punct lx ']';
      expect_punct lx ';';
      true
  | Ident "measure" ->
      (* Measurement is outside the mapping problem, but the lint layer
         wants to know which qubits were measured (gates after measurement
         are a diagnostic).  Resolve the quantum argument when it names a
         known register, then skip the classical target up to ';'. *)
      advance lx;
      let line = lx.tok_line in
      (match lx.tok with
      | Ident name when List.mem_assoc name env.qregs ->
          let qs = parse_qarg lx env in
          List.iter
            (fun q ->
              env.rev_stmts <- Measure_stmt (q, line) :: env.rev_stmts)
            qs
      | _ -> ());
      let rec skip () =
        match lx.tok with
        | Punct ';' ->
            advance lx;
            true
        | Eof -> fail lx.tok_line "unterminated measure"
        | _ ->
            advance lx;
            skip ()
      in
      skip ()
  | Ident "barrier" ->
      advance lx;
      let line = lx.tok_line in
      let rec args acc =
        let a = parse_qarg lx env in
        match lx.tok with
        | Punct ',' ->
            advance lx;
            args (a :: acc)
        | _ -> List.rev (a :: acc)
      in
      let qs = List.concat (args []) in
      expect_punct lx ';';
      emit env line (Gate.Barrier qs);
      true
  | Ident "cx" | Ident "CX" ->
      advance lx;
      let line = lx.tok_line in
      let a = parse_qarg lx env in
      expect_punct lx ',';
      let b = parse_qarg lx env in
      expect_punct lx ';';
      zip_broadcast line
        (fun qs ->
          match qs with
          | [ c; t ] ->
              if c = t then fail line "cx with identical qubits";
              emit env line (Gate.Cnot (c, t))
          | _ -> assert false)
        [ a; b ];
      true
  | Ident "swap" ->
      advance lx;
      let line = lx.tok_line in
      let a = parse_qarg lx env in
      expect_punct lx ',';
      let b = parse_qarg lx env in
      expect_punct lx ';';
      zip_broadcast line
        (fun qs ->
          match qs with
          | [ x; y ] ->
              if x = y then fail line "swap with identical qubits";
              emit env line (Gate.Swap (x, y))
          | _ -> assert false)
        [ a; b ];
      true
  | Ident name ->
      advance lx;
      let line = lx.tok_line in
      let params = parse_params lx in
      let kind = single_of_name line name params in
      let a = parse_qarg lx env in
      expect_punct lx ';';
      List.iter (fun q -> emit env line (Gate.Single (kind, q))) a;
      true
  | _ -> fail lx.tok_line "unexpected token"

let parse_annotated src =
  let lx = make_lexer src in
  let env = { qregs = []; total = 0; rev_stmts = [] } in
  while parse_statement lx env do
    ()
  done;
  let stmts = List.rev env.rev_stmts in
  let gates =
    List.filter_map
      (function Gate_stmt (g, _) -> Some g | Measure_stmt _ -> None)
      stmts
  in
  { circuit = Circuit.create env.total gates; stmts }

let parse_string src = (parse_annotated src).circuit

let read_file path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      really_input_string ic n)

let parse_file path = parse_string (read_file path)
let parse_file_annotated path = parse_annotated (read_file path)

(* ------------------------------------------------------------------ *)
(* Writer                                                              *)
(* ------------------------------------------------------------------ *)

let to_string ?(creg = false) circuit =
  let buf = Buffer.create 256 in
  let n = Circuit.num_qubits circuit in
  Buffer.add_string buf "OPENQASM 2.0;\ninclude \"qelib1.inc\";\n";
  Buffer.add_string buf (Printf.sprintf "qreg q[%d];\n" n);
  if creg then Buffer.add_string buf (Printf.sprintf "creg c[%d];\n" n);
  List.iter
    (fun g ->
      let line =
        match g with
        | Gate.Single ((Gate.Rx a | Gate.Ry a | Gate.Rz a) as k, q) ->
            Printf.sprintf "%s(%.17g) q[%d];" (Gate.single_kind_name k) a q
        | Gate.Single (Gate.U (t, p, l), q) ->
            Printf.sprintf "u3(%.17g,%.17g,%.17g) q[%d];" t p l q
        | Gate.Single (k, q) ->
            Printf.sprintf "%s q[%d];" (Gate.single_kind_name k) q
        | Gate.Cnot (c, t) -> Printf.sprintf "cx q[%d],q[%d];" c t
        | Gate.Swap (a, b) -> Printf.sprintf "swap q[%d],q[%d];" a b
        | Gate.Barrier qs ->
            Printf.sprintf "barrier %s;"
              (String.concat ","
                 (List.map (Printf.sprintf "q[%d]") qs))
      in
      Buffer.add_string buf line;
      Buffer.add_char buf '\n')
    (Circuit.gates circuit);
  if creg then
    for q = 0 to n - 1 do
      Buffer.add_string buf (Printf.sprintf "measure q[%d] -> c[%d];\n" q q)
    done;
  Buffer.contents buf

let write_file ?creg path circuit =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out_noerr oc)
    (fun () -> output_string oc (to_string ?creg circuit))
