(** Clustering a gate sequence into maximal runs on disjoint qubit sets.

    The paper's *disjoint qubits* strategy (Sec. 4.2) allows mapping
    permutations only between such runs: gates inside a run touch pairwise
    disjoint qubits, so a single placement serves the whole run.  The same
    layering drives the layer-by-layer heuristic baseline. *)

val of_pairs : (int * int) list -> int list
(** [of_pairs cnots] assigns a 0-based layer index to each CNOT (given as
    control/target pairs, in circuit order).  A new layer starts exactly
    when a gate shares a qubit with the current layer.  Indices are
    non-decreasing and start at 0; the empty list yields []. *)

val of_circuit : Circuit.t -> int list
(** Layer index per CNOT of the circuit ({!Circuit.cnots} order). *)

val starts : int list -> int list
(** 0-based gate positions at which a new layer begins (position 0
    excluded) — i.e. the positions the disjoint-qubits strategy allows a
    permutation before. *)

val count : int list -> int
(** Number of distinct layers. *)

(** Clustering into runs touching at most [k] distinct qubits — the *qubit
    triangle* strategy uses [k = 3] (any 3 interacting qubits fit one of
    the architecture's triangles). *)
val bounded_qubit_runs : k:int -> (int * int) list -> int list

val run_starts_bounded : k:int -> (int * int) list -> int list
(** [starts] of {!bounded_qubit_runs}. *)
