type single_kind =
  | I
  | X
  | Y
  | Z
  | H
  | S
  | Sdg
  | T
  | Tdg
  | Rx of float
  | Ry of float
  | Rz of float
  | U of float * float * float

type t =
  | Single of single_kind * int
  | Cnot of int * int
  | Swap of int * int
  | Barrier of int list

let single_kind_name = function
  | I -> "id"
  | X -> "x"
  | Y -> "y"
  | Z -> "z"
  | H -> "h"
  | S -> "s"
  | Sdg -> "sdg"
  | T -> "t"
  | Tdg -> "tdg"
  | Rx _ -> "rx"
  | Ry _ -> "ry"
  | Rz _ -> "rz"
  | U _ -> "u3"

let qubits = function
  | Single (_, q) -> [ q ]
  | Cnot (c, t) -> [ c; t ]
  | Swap (a, b) -> [ a; b ]
  | Barrier qs -> qs

let max_qubit g = List.fold_left max (-1) (qubits g)
let is_cnot = function Cnot _ -> true | _ -> false
let is_single = function Single _ -> true | _ -> false

let map_qubits f = function
  | Single (k, q) -> Single (k, f q)
  | Cnot (c, t) ->
      let c = f c and t = f t in
      if c = t then invalid_arg "Gate.map_qubits: CNOT on a single qubit";
      Cnot (c, t)
  | Swap (a, b) ->
      let a = f a and b = f b in
      if a = b then invalid_arg "Gate.map_qubits: SWAP on a single qubit";
      Swap (a, b)
  | Barrier qs -> Barrier (List.map f qs)

let equal_kind a b =
  match (a, b) with
  | Rx x, Rx y | Ry x, Ry y | Rz x, Rz y -> Float.equal x y
  | U (a1, a2, a3), U (b1, b2, b3) ->
      Float.equal a1 b1 && Float.equal a2 b2 && Float.equal a3 b3
  | a, b -> a = b

let equal g1 g2 =
  match (g1, g2) with
  | Single (k1, q1), Single (k2, q2) -> equal_kind k1 k2 && q1 = q2
  | Cnot (c1, t1), Cnot (c2, t2) -> c1 = c2 && t1 = t2
  | Swap (a1, b1), Swap (a2, b2) -> a1 = a2 && b1 = b2
  | Barrier q1, Barrier q2 -> q1 = q2
  | _ -> false

let pp fmt = function
  | Single ((Rx a | Ry a | Rz a) as k, q) ->
      Format.fprintf fmt "%s(%g) q%d" (single_kind_name k) a q
  | Single (U (t, p, l), q) ->
      Format.fprintf fmt "u3(%g,%g,%g) q%d" t p l q
  | Single (k, q) -> Format.fprintf fmt "%s q%d" (single_kind_name k) q
  | Cnot (c, t) -> Format.fprintf fmt "cx q%d, q%d" c t
  | Swap (a, b) -> Format.fprintf fmt "swap q%d, q%d" a b
  | Barrier qs ->
      Format.fprintf fmt "barrier %a"
        (Format.pp_print_list
           ~pp_sep:(fun f () -> Format.pp_print_string f ", ")
           (fun f q -> Format.fprintf f "q%d" q))
        qs

open Complex

let c re im = { re; im }
let half_angle theta = theta /. 2.0

(* u3(θ,φ,λ) in the OpenQASM convention. *)
let u3_matrix theta phi lambda =
  let ht = half_angle theta in
  let cos_ht = Stdlib.cos ht and sin_ht = Stdlib.sin ht in
  let e x = c (Stdlib.cos x) (Stdlib.sin x) in
  [|
    [| c cos_ht 0.0; neg (mul (e lambda) (c sin_ht 0.0)) |];
    [| mul (e phi) (c sin_ht 0.0); mul (e (phi +. lambda)) (c cos_ht 0.0) |];
  |]

let single_matrix kind =
  let s2 = 1.0 /. Stdlib.sqrt 2.0 in
  match kind with
  | I -> [| [| one; zero |]; [| zero; one |] |]
  | X -> [| [| zero; one |]; [| one; zero |] |]
  | Y -> [| [| zero; c 0.0 (-1.0) |]; [| c 0.0 1.0; zero |] |]
  | Z -> [| [| one; zero |]; [| zero; c (-1.0) 0.0 |] |]
  | H -> [| [| c s2 0.0; c s2 0.0 |]; [| c s2 0.0; c (-.s2) 0.0 |] |]
  | S -> [| [| one; zero |]; [| zero; c 0.0 1.0 |] |]
  | Sdg -> [| [| one; zero |]; [| zero; c 0.0 (-1.0) |] |]
  | T -> [| [| one; zero |]; [| zero; c s2 s2 |] |]
  | Tdg -> [| [| one; zero |]; [| zero; c s2 (-.s2) |] |]
  | Rx t ->
      let h = half_angle t in
      [|
        [| c (Stdlib.cos h) 0.0; c 0.0 (-.Stdlib.sin h) |];
        [| c 0.0 (-.Stdlib.sin h); c (Stdlib.cos h) 0.0 |];
      |]
  | Ry t ->
      let h = half_angle t in
      [|
        [| c (Stdlib.cos h) 0.0; c (-.Stdlib.sin h) 0.0 |];
        [| c (Stdlib.sin h) 0.0; c (Stdlib.cos h) 0.0 |];
      |]
  | Rz t ->
      let h = half_angle t in
      [|
        [| c (Stdlib.cos h) (-.Stdlib.sin h); zero |];
        [| zero; c (Stdlib.cos h) (Stdlib.sin h) |];
      |]
  | U (t, p, l) -> u3_matrix t p l

let pi = 4.0 *. atan 1.0

let u_params = function
  | I -> (0.0, 0.0, 0.0)
  | X -> (pi, 0.0, pi)
  | Y -> (pi, pi /. 2.0, pi /. 2.0)
  | Z -> (0.0, 0.0, pi)
  | H -> (pi /. 2.0, 0.0, pi)
  | S -> (0.0, 0.0, pi /. 2.0)
  | Sdg -> (0.0, 0.0, -.pi /. 2.0)
  | T -> (0.0, 0.0, pi /. 4.0)
  | Tdg -> (0.0, 0.0, -.pi /. 4.0)
  | Rx t -> (t, -.pi /. 2.0, pi /. 2.0)
  | Ry t -> (t, 0.0, 0.0)
  | Rz t -> (0.0, 0.0, t)
  | U (t, p, l) -> (t, p, l)
