type t = {
  gates : Gate.t array;
  preds : int list array;
  succs : int list array;
  asap : int array;
}

let qubits_of num_qubits g =
  match g with
  | Gate.Barrier _ -> List.init num_qubits Fun.id (* full fence *)
  | _ -> Gate.qubits g

let of_circuit circuit =
  let gates = Array.of_list (Circuit.gates circuit) in
  let n = Array.length gates in
  let nq = Circuit.num_qubits circuit in
  let preds = Array.make n [] in
  let succs = Array.make n [] in
  let asap = Array.make n 0 in
  let last_on = Array.make (max nq 1) (-1) in
  Array.iteri
    (fun i g ->
      let qs = qubits_of nq g in
      let ps =
        List.sort_uniq compare
          (List.filter_map
             (fun q -> if last_on.(q) >= 0 then Some last_on.(q) else None)
             qs)
      in
      preds.(i) <- ps;
      List.iter (fun p -> succs.(p) <- i :: succs.(p)) ps;
      asap.(i) <-
        List.fold_left (fun acc p -> max acc (asap.(p) + 1)) 0 ps;
      List.iter (fun q -> last_on.(q) <- i) qs)
    gates;
  Array.iteri (fun i s -> succs.(i) <- List.sort_uniq compare s) succs;
  { gates; preds; succs; asap }

let num_gates t = Array.length t.gates

let check t i =
  if i < 0 || i >= num_gates t then invalid_arg "Dag: gate index"

let gate t i =
  check t i;
  t.gates.(i)

let predecessors t i =
  check t i;
  t.preds.(i)

let successors t i =
  check t i;
  t.succs.(i)

let asap_layer t i =
  check t i;
  t.asap.(i)

let depth t =
  Array.fold_left (fun acc l -> max acc (l + 1)) 0 t.asap

let cnot_depth t =
  (* longest chain of CNOTs: dynamic programming over the DAG *)
  let n = num_gates t in
  let best = Array.make n 0 in
  for i = 0 to n - 1 do
    let here = if Gate.is_cnot t.gates.(i) then 1 else 0 in
    let from_preds =
      List.fold_left (fun acc p -> max acc best.(p)) 0 t.preds.(i)
    in
    best.(i) <- here + from_preds
  done;
  Array.fold_left max 0 best

let layers t =
  let d = depth t in
  let buckets = Array.make (max d 1) [] in
  Array.iteri (fun i l -> buckets.(l) <- i :: buckets.(l)) t.asap;
  if d = 0 then []
  else Array.to_list (Array.map List.rev buckets)

let roots t =
  let acc = ref [] in
  Array.iteri (fun i ps -> if ps = [] then acc := i :: !acc) t.preds;
  List.rev !acc
