type t = { num_qubits : int; gates : Gate.t list }

let check_gate n g =
  List.iter
    (fun q ->
      if q < 0 || q >= n then
        invalid_arg
          (Printf.sprintf "Circuit: gate %s uses qubit %d outside [0,%d)"
             (Format.asprintf "%a" Gate.pp g)
             q n))
    (Gate.qubits g)

let create num_qubits gates =
  if num_qubits < 0 then invalid_arg "Circuit.create: negative qubit count";
  List.iter (check_gate num_qubits) gates;
  { num_qubits; gates }

let empty n = create n []
let num_qubits c = c.num_qubits
let gates c = c.gates
let length c = List.length c.gates

let append c g =
  check_gate c.num_qubits g;
  { c with gates = c.gates @ [ g ] }

let concat a b =
  if a.num_qubits <> b.num_qubits then
    invalid_arg "Circuit.concat: qubit count mismatch";
  { a with gates = a.gates @ b.gates }

let equal a b =
  a.num_qubits = b.num_qubits
  && List.length a.gates = List.length b.gates
  && List.for_all2 Gate.equal a.gates b.gates

let add_single c k q = append c (Gate.Single (k, q))

let add_cnot c ~control ~target =
  if control = target then invalid_arg "Circuit.add_cnot: control = target";
  append c (Gate.Cnot (control, target))

let add_swap c a b =
  if a = b then invalid_arg "Circuit.add_swap: identical qubits";
  append c (Gate.Swap (a, b))

let cnots c =
  List.filter_map
    (function Gate.Cnot (ctl, tgt) -> Some (ctl, tgt) | _ -> None)
    c.gates

let without_singles c =
  {
    c with
    gates = List.filter (function Gate.Cnot _ -> true | _ -> false) c.gates;
  }

let used_qubits c =
  let seen = Array.make (max c.num_qubits 1) false in
  List.iter
    (fun g -> List.iter (fun q -> seen.(q) <- true) (Gate.qubits g))
    c.gates;
  List.filter (fun q -> seen.(q)) (List.init c.num_qubits Fun.id)

let map_qubits f n c = create n (List.map (Gate.map_qubits f) c.gates)

let count_singles c =
  List.length (List.filter Gate.is_single c.gates)

let count_cnots c = List.length (List.filter Gate.is_cnot c.gates)

let count_swaps c =
  List.length
    (List.filter (function Gate.Swap _ -> true | _ -> false) c.gates)

let original_cost c =
  if count_swaps c > 0 then
    invalid_arg "Circuit.original_cost: undecomposed SWAP gates present";
  count_singles c + count_cnots c

let interacting_pairs c =
  let norm (a, b) = if a < b then (a, b) else (b, a) in
  List.sort_uniq compare (List.map norm (cnots c))

let pp fmt c =
  Format.fprintf fmt "@[<v>circuit on %d qubits:@," c.num_qubits;
  List.iter (fun g -> Format.fprintf fmt "  %a@," Gate.pp g) c.gates;
  Format.fprintf fmt "@]"
